package live

import (
	"testing"
	"time"

	"movingdb/internal/geom"
	"movingdb/internal/ingest"
)

// rig wires a real ingest pipeline into a registry the way moserver
// does: every epoch publish notifies the registry on the flush path.
type rig struct {
	t    *testing.T
	p    *ingest.Pipeline
	r    *Registry
	tick float64
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	r := NewRegistry(cfg)
	p, err := ingest.Open(ingest.Config{
		FlushSize: 1 << 20, MaxAge: time.Hour, MaxQueued: 1 << 30,
		OnPublish: r.Notify,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close(); p.Close() })
	return &rig{t: t, p: p, r: r}
}

// move places objects and flushes one epoch; the time axis advances one
// step per call.
func (rg *rig) move(pos map[string][2]float64) {
	rg.t.Helper()
	rg.tick++
	batch := make([]ingest.Observation, 0, len(pos))
	for id, xy := range pos {
		batch = append(batch, ingest.Observation{ObjectID: id, T: rg.tick, X: xy[0], Y: xy[1]})
	}
	if _, err := rg.p.Ingest(batch); err != nil {
		rg.t.Fatal(err)
	}
	rg.p.Flush()
}

// collect waits until the subscription has delivered n events (the
// notifier runs asynchronously) and returns them in order.
func collect(t *testing.T, s *Subscription, n int) []Event {
	t.Helper()
	var out []Event
	deadline := time.After(5 * time.Second)
	for len(out) < n {
		evs, _ := s.Take()
		out = append(out, evs...)
		if len(out) >= n {
			break
		}
		select {
		case <-s.Wait():
		case <-s.Done():
			t.Fatalf("subscription ended with %d/%d events: %+v", len(out), n, out)
		case <-deadline:
			t.Fatalf("timed out with %d/%d events: %+v", len(out), n, out)
		}
	}
	return out
}

// settle waits for the notifier to have drained every publish issued so
// far, by polling until no event arrives for a few quiet intervals.
func settle() { time.Sleep(50 * time.Millisecond) }

var box = geom.Rect{MinX: 100, MinY: 100, MaxX: 200, MaxY: 200}

func TestInsideEnterLeave(t *testing.T) {
	rg := newRig(t, Config{})
	rg.move(map[string][2]float64{"bus": {0, 0}})
	sub, err := rg.r.Subscribe(Predicate{Kind: KindInside, Object: "bus", Region: box}, rg.p.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	rg.move(map[string][2]float64{"bus": {150, 150}}) // enter
	rg.move(map[string][2]float64{"bus": {160, 150}}) // still inside: no event
	rg.move(map[string][2]float64{"bus": {500, 500}}) // leave
	evs := collect(t, sub, 2)
	if len(evs) != 2 || evs[0].Edge != "enter" || evs[1].Edge != "leave" {
		t.Fatalf("events: %+v", evs)
	}
	if evs[0].Object != "bus" || evs[0].X != 150 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("event detail: %+v", evs)
	}
	if evs[1].Epoch <= evs[0].Epoch {
		t.Fatalf("epoch order: %+v", evs)
	}
	settle()
	if evs, _ := sub.Take(); len(evs) != 0 {
		t.Fatalf("unexpected extra events: %+v", evs)
	}
}

func TestWithinEnterLeave(t *testing.T) {
	rg := newRig(t, Config{})
	rg.move(map[string][2]float64{"cab": {0, 0}})
	sub, err := rg.r.Subscribe(Predicate{Kind: KindWithin, Object: "cab", X: 300, Y: 300, Radius: 50}, rg.p.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	// The bounding square's corner is outside the disk: no event.
	rg.move(map[string][2]float64{"cab": {345, 345}})
	rg.move(map[string][2]float64{"cab": {320, 320}}) // inside the disk: enter
	rg.move(map[string][2]float64{"cab": {0, 0}})     // leave
	evs := collect(t, sub, 2)
	if evs[0].Edge != "enter" || evs[0].X != 320 || evs[1].Edge != "leave" {
		t.Fatalf("events: %+v", evs)
	}
}

func TestSeedSuppressesExistingTruth(t *testing.T) {
	rg := newRig(t, Config{})
	rg.move(map[string][2]float64{"bus": {150, 150}}) // inside before subscribing
	sub, err := rg.r.Subscribe(Predicate{Kind: KindInside, Object: "bus", Region: box}, rg.p.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	rg.move(map[string][2]float64{"bus": {160, 160}}) // still inside: no enter
	rg.move(map[string][2]float64{"bus": {600, 600}}) // leave fires first
	evs := collect(t, sub, 1)
	if len(evs) != 1 || evs[0].Edge != "leave" {
		t.Fatalf("expected a single leave, got %+v", evs)
	}
}

func TestAppearsDiff(t *testing.T) {
	rg := newRig(t, Config{})
	rg.move(map[string][2]float64{"a": {150, 150}, "b": {0, 0}})
	sub, err := rg.r.Subscribe(Predicate{Kind: KindAppears, Region: box}, rg.p.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	// a was already inside (seeded); b enters; c is first observed
	// directly inside the region.
	rg.move(map[string][2]float64{"b": {120, 120}, "c": {199, 199}})
	evs := collect(t, sub, 2)
	if evs[0].Edge != "enter" || evs[0].Object != "b" || evs[1].Edge != "enter" || evs[1].Object != "c" {
		t.Fatalf("events: %+v", evs)
	}
	rg.move(map[string][2]float64{"a": {900, 900}}) // seeded member leaves
	evs = collect(t, sub, 1)
	if evs[0].Edge != "leave" || evs[0].Object != "a" {
		t.Fatalf("leave event: %+v", evs)
	}
}

func TestNilEpochSeedFiresOnFirstTruth(t *testing.T) {
	rg := newRig(t, Config{})
	sub, err := rg.r.Subscribe(Predicate{Kind: KindAppears, Region: box}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rg.move(map[string][2]float64{"x": {150, 150}})
	evs := collect(t, sub, 1)
	if evs[0].Edge != "enter" || evs[0].Object != "x" {
		t.Fatalf("events: %+v", evs)
	}
}

func TestDropOldestMarksLagged(t *testing.T) {
	rg := newRig(t, Config{BufferCap: 4})
	rg.move(map[string][2]float64{"bus": {0, 0}})
	sub, err := rg.r.Subscribe(Predicate{Kind: KindInside, Object: "bus", Region: box}, rg.p.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	// Six flips while nobody reads: the four-slot ring keeps the newest
	// four, drops the oldest two, and marks the stream lagged.
	for i := 0; i < 3; i++ {
		rg.move(map[string][2]float64{"bus": {150, 150}})
		rg.move(map[string][2]float64{"bus": {900, 900}})
	}
	deadline := time.Now().Add(5 * time.Second)
	for sub.Info().Dropped < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("drops never happened: %+v", sub.Info())
		}
		time.Sleep(time.Millisecond)
	}
	evs, lagged := sub.Take()
	if !lagged {
		t.Fatal("Take did not report lagged")
	}
	if len(evs) != 4 || evs[0].Seq != 3 || evs[3].Seq != 6 {
		t.Fatalf("ring contents: %+v", evs)
	}
	if _, lagged := sub.Take(); lagged {
		t.Fatal("lagged flag not cleared by Take")
	}
	if got := sub.Info().Dropped; got != 2 {
		t.Fatalf("dropped count: %d", got)
	}
}

func TestUnsubscribeEndsStream(t *testing.T) {
	rg := newRig(t, Config{})
	sub, err := rg.r.Subscribe(Predicate{Kind: KindAppears, Region: box}, rg.p.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	if !rg.r.Unsubscribe(sub.ID()) {
		t.Fatal("unsubscribe failed")
	}
	select {
	case <-sub.Done():
	case <-time.After(time.Second):
		t.Fatal("Done not closed after unsubscribe")
	}
	if rg.r.Unsubscribe(sub.ID()) {
		t.Fatal("double unsubscribe succeeded")
	}
	if _, ok := rg.r.Get(sub.ID()); ok {
		t.Fatal("unsubscribed id still resolvable")
	}
	if sub.Info().Active {
		t.Fatal("closed subscription reports active")
	}
	// Publishes after unsubscribe are evaluated without the dead sub.
	rg.move(map[string][2]float64{"q": {150, 150}})
	settle()
	if evs, _ := sub.Take(); len(evs) != 0 {
		t.Fatalf("events after unsubscribe: %+v", evs)
	}
}

func TestRegionIndexRebuildShedsTombstones(t *testing.T) {
	rg := newRig(t, Config{})
	ids := make([]string, 0, 100)
	for i := 0; i < 100; i++ {
		s, err := rg.r.Subscribe(Predicate{Kind: KindAppears, Region: box}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID())
	}
	for _, id := range ids[:90] {
		rg.r.Unsubscribe(id)
	}
	rg.r.mu.Lock()
	tombs, entries := rg.r.tombstones, rg.r.regions.Len()
	rg.r.mu.Unlock()
	// The 65th removal trips the rebuild (tombstones exceed both the
	// floor and the survivor count); the remaining removals tombstone
	// again. What matters: a rebuild shed the bulk, and the index holds
	// exactly the survivors plus the post-rebuild tombstones.
	if tombs >= 90 {
		t.Fatalf("no rebuild happened: %d tombstones", tombs)
	}
	if entries != 10+tombs {
		t.Fatalf("index entries %d, want survivors+tombstones %d", entries, 10+tombs)
	}
	// The survivors still receive events.
	sub, _ := rg.r.Get(ids[95])
	rg.move(map[string][2]float64{"m": {150, 150}})
	if evs := collect(t, sub, 1); evs[0].Object != "m" {
		t.Fatalf("survivor events: %+v", evs)
	}
}

func TestCloseIsIdempotentAndFinal(t *testing.T) {
	rg := newRig(t, Config{})
	sub, err := rg.r.Subscribe(Predicate{Kind: KindAppears, Region: box}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rg.r.Close()
	rg.r.Close()
	select {
	case <-sub.Done():
	case <-time.After(time.Second):
		t.Fatal("Done not closed by registry Close")
	}
	if _, err := rg.r.Subscribe(Predicate{Kind: KindAppears, Region: box}, nil); err == nil {
		t.Fatal("Subscribe after Close succeeded")
	}
	// Notify after Close must be a harmless no-op (the ingest pipeline
	// may still flush while the server drains).
	rg.move(map[string][2]float64{"z": {150, 150}})
}

func TestMergeDirty(t *testing.T) {
	a := []ingest.DirtyObject{
		{ID: "a", Rect: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, New: true},
		{ID: "c", Rect: geom.Rect{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}},
	}
	b := []ingest.DirtyObject{
		{ID: "a", Rect: geom.Rect{MinX: 2, MinY: 2, MaxX: 3, MaxY: 3}},
		{ID: "b", Rect: geom.Rect{MinX: 9, MinY: 9, MaxX: 9, MaxY: 9}, New: true},
	}
	m := mergeDirty(a, b)
	if len(m) != 3 || m[0].ID != "a" || m[1].ID != "b" || m[2].ID != "c" {
		t.Fatalf("merge: %+v", m)
	}
	if !m[0].New || m[0].Rect.MaxX != 3 || m[0].Rect.MinX != 0 {
		t.Fatalf("union of a: %+v", m[0])
	}
	if !m[1].New || m[2].New {
		t.Fatalf("New flags: %+v", m)
	}
}

func TestCoalescePreservesEdges(t *testing.T) {
	// A registry with a tiny queue; Notify calls race ahead of the
	// drain, forcing coalescing, yet every edge must still arrive
	// because edges are flips against the subscription's own state.
	rg := newRig(t, Config{QueueCap: 1})
	rg.move(map[string][2]float64{"bus": {0, 0}})
	sub, err := rg.r.Subscribe(Predicate{Kind: KindInside, Object: "bus", Region: box}, rg.p.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rg.move(map[string][2]float64{"bus": {150, 150}})
		rg.move(map[string][2]float64{"bus": {900, 900}})
	}
	settle()
	evs, _ := sub.Take()
	if len(evs) == 0 {
		t.Fatal("no events delivered under coalescing")
	}
	// Edges must alternate starting with enter, whatever was coalesced.
	for i, e := range evs {
		want := "enter"
		if i%2 == 1 {
			want = "leave"
		}
		if e.Edge != want {
			t.Fatalf("event %d: got %s, want %s (%+v)", i, e.Edge, want, evs)
		}
	}
}

func TestPredicateValidateAndString(t *testing.T) {
	cases := []struct {
		p  Predicate
		ok bool
	}{
		{Predicate{Kind: KindInside, Object: "a", Region: box}, true},
		{Predicate{Kind: KindInside, Region: box}, false},                           // no object
		{Predicate{Kind: KindInside, Object: "a", Region: geom.EmptyRect()}, false}, // empty region
		{Predicate{Kind: KindWithin, Object: "a", X: 1, Y: 1, Radius: 5}, true},     //
		{Predicate{Kind: KindWithin, Object: "a", X: 1, Y: 1, Radius: 0}, false},    // no radius
		{Predicate{Kind: KindAppears, Region: box}, true},
		{Predicate{Kind: KindAppears, Object: "a", Region: box}, false}, // object is meaningless
		{Predicate{Kind: "near", Object: "a"}, false},                   // unknown kind
	}
	for i, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d (%+v): err=%v, want ok=%v", i, c.p, err, c.ok)
		}
	}
	p := Predicate{Kind: KindWithin, Object: "bus-7", X: 10, Y: 20, Radius: 5}
	if got := p.String(); got != "within(bus-7, 10, 20, 5)" {
		t.Errorf("String: %q", got)
	}
	b := p.Bound()
	if b.MinX != 5 || b.MaxX != 15 || b.MinY != 15 || b.MaxY != 25 {
		t.Errorf("Bound: %+v", b)
	}
}
