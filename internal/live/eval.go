package live

import (
	"slices"

	"movingdb/internal/ingest"
	"movingdb/internal/moving"
)

// Evaluation of standing queries against one published epoch. Every
// function here is deterministic — a pure fold over the (epoch, dirty
// set) sequence — which is what makes the subsystem testable against a
// brute-force oracle and keeps event order reproducible: molint's
// det-path check covers this file.

// candidatesLocked selects the subscriptions one queued publish can
// affect: the id-bound subs of dirty subjects plus the region-scoped
// subs whose bounding rectangles intersect a dirty object's movement
// rectangle (an R-tree query over the subscription index — the data
// structure turned around to index queries). The movement rectangle
// spans the object's old position through its new one, so the filter is
// complete for both enter and leave edges. Candidates come back in
// ascending subscription-id order, which fixes the evaluation (and so
// the event emission) order. Caller holds r.mu.
func (r *Registry) candidatesLocked(n notice) []*Subscription {
	cands := make(map[string]*Subscription)
	var keys []int64
	for _, d := range n.dirty {
		for _, s := range r.byObject[d.ID] {
			if s.bound.Intersects(d.Rect) {
				cands[s.id] = s
			}
		}
		keys, _ = r.regions.Search(fullTimeCube(d.Rect), keys[:0])
		for _, k := range keys {
			if s, ok := r.regionSubs[k]; ok {
				cands[s.id] = s
			}
		}
	}
	ids := make([]string, 0, len(cands))
	for id := range cands {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	out := make([]*Subscription, len(ids))
	for i, id := range ids {
		out[i] = cands[id]
	}
	return out
}

// evaluate folds one publish into the subscription's edge-trigger
// state, emitting an event per flip. Id-bound forms compare the
// subject's latest position against the remembered truth; appears
// diffs the dirty objects against the member set.
func (s *Subscription) evaluate(n notice) (events, dropped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, 0
	}
	emit := func(edge, obj string, smp moving.Sample) {
		e := Event{
			Epoch:     n.ep.Seq(),
			Edge:      edge,
			Object:    obj,
			T:         float64(smp.T),
			X:         smp.P.X,
			Y:         smp.P.Y,
			PubUnixNS: n.pubNS,
		}
		if s.pushLocked(e) {
			dropped++
		}
		events++
	}
	if s.pred.idBound() {
		smp, ok := n.ep.Current(s.pred.Object)
		in := ok && s.pred.holds(smp.P)
		if in != s.state {
			s.state = in
			if in {
				emit("enter", s.pred.Object, smp)
			} else {
				emit("leave", s.pred.Object, smp)
			}
		}
		return events, dropped
	}
	for _, d := range n.dirty {
		if !s.bound.Intersects(d.Rect) {
			continue
		}
		smp, ok := n.ep.Current(d.ID)
		in := ok && s.pred.holds(smp.P)
		_, was := s.members[d.ID]
		switch {
		case in && !was:
			s.members[d.ID] = struct{}{}
			emit("enter", d.ID, smp)
		case !in && was:
			delete(s.members, d.ID)
			emit("leave", d.ID, smp)
		}
	}
	return events, dropped
}

// seed initialises the edge-trigger state from an epoch so a
// subscription does not fire for objects already satisfying the
// predicate at subscribe time — events are flips relative to the state
// when the subscription was created.
func (s *Subscription) seed(ep *ingest.Epoch) {
	if ep == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pred.idBound() {
		smp, ok := ep.Current(s.pred.Object)
		s.state = ok && s.pred.holds(smp.P)
		return
	}
	for _, id := range ep.CurrentInside(s.bound) {
		if smp, ok := ep.Current(id); ok && s.pred.holds(smp.P) {
			s.members[id] = struct{}{}
		}
	}
}

// mergeDirty unions two id-sorted dirty sets — the coalescing step when
// the notifier queue overflows. Movement rectangles union, the New flag
// ors, and the result stays id-sorted.
func mergeDirty(a, b []ingest.DirtyObject) []ingest.DirtyObject {
	out := make([]ingest.DirtyObject, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].ID < b[j].ID:
			out = append(out, a[i])
			i++
		case a[i].ID > b[j].ID:
			out = append(out, b[j])
			j++
		default:
			m := a[i]
			m.Rect = m.Rect.Union(b[j].Rect)
			m.New = m.New || b[j].New
			out = append(out, m)
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
