// Package live is the continuous-query subsystem: a subscription
// registry evaluated push-style from the ingest pipeline's epoch
// publish hook, streaming edge-triggered enter/leave events to clients
// over SSE. It is the standing-query counterpart of the pull-based
// /v1/* read path — the alibi-style predicates of the moving objects
// literature recast so the database tells the client the moment a
// predicate flips, instead of the client polling for it.
package live

import (
	"fmt"
	"math"

	"movingdb/internal/geom"
)

// Kind names a standing-query predicate form.
type Kind string

const (
	// KindInside fires when the subject object enters or leaves a
	// rectangular region: inside(id, region).
	KindInside Kind = "inside"
	// KindWithin fires when the subject object enters or leaves the
	// disk of the given radius around a fixed point: within(id, x, y, r).
	KindWithin Kind = "within"
	// KindAppears fires when any object enters or leaves a rectangular
	// region: appears(region). Events carry the object that moved.
	KindAppears Kind = "appears"
)

// Predicate is one standing query. Object is the subject id for the
// id-bound forms (inside, within); Region is the rectangle for inside
// and appears; X, Y, Radius describe the disk for within. Predicates
// are immutable once validated.
type Predicate struct {
	Kind   Kind
	Object string
	Region geom.Rect
	X, Y   float64
	Radius float64
}

// Validate checks the predicate's shape: a known kind, a subject id
// where one is required, a non-empty region or a positive finite
// radius.
func (p Predicate) Validate() error {
	switch p.Kind {
	case KindInside:
		if p.Object == "" {
			return fmt.Errorf("live: inside predicate needs an object id")
		}
		if p.Region.IsEmpty() {
			return fmt.Errorf("live: inside predicate needs a non-empty region")
		}
	case KindWithin:
		if p.Object == "" {
			return fmt.Errorf("live: within predicate needs an object id")
		}
		if !(p.Radius > 0) || math.IsInf(p.Radius, 0) {
			return fmt.Errorf("live: within predicate needs a positive finite radius")
		}
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			return fmt.Errorf("live: within predicate needs a finite centre")
		}
	case KindAppears:
		if p.Object != "" {
			return fmt.Errorf("live: appears predicate watches every object; it takes no object id")
		}
		if p.Region.IsEmpty() {
			return fmt.Errorf("live: appears predicate needs a non-empty region")
		}
	default:
		return fmt.Errorf("live: unknown predicate kind %q", p.Kind)
	}
	return nil
}

// Bound returns the predicate's bounding rectangle — the region for the
// rectangular forms, the circumscribing square for within. Intersection
// of an object's movement rectangle with the bound is a complete
// candidate filter: a predicate can only flip for an object whose old
// or new position lies in the bound, and both are inside the movement
// rectangle.
func (p Predicate) Bound() geom.Rect {
	if p.Kind == KindWithin {
		return geom.Rect{
			MinX: p.X - p.Radius, MinY: p.Y - p.Radius,
			MaxX: p.X + p.Radius, MaxY: p.Y + p.Radius,
		}
	}
	return p.Region
}

// idBound reports whether the predicate watches one named object (and
// is therefore dispatched by object id, not through the region index).
func (p Predicate) idBound() bool {
	return p.Kind == KindInside || p.Kind == KindWithin
}

// holds reports whether the predicate is satisfied by an object at pt.
// Pure and deterministic: the edge-trigger state machine is a fold of
// holds over the epoch sequence.
func (p Predicate) holds(pt geom.Point) bool {
	if p.Kind == KindWithin {
		return math.Hypot(pt.X-p.X, pt.Y-p.Y) <= p.Radius
	}
	return p.Region.ContainsPoint(pt)
}

// String renders the predicate in its canonical functional form.
func (p Predicate) String() string {
	switch p.Kind {
	case KindInside:
		return fmt.Sprintf("inside(%s, %s)", p.Object, p.Region)
	case KindWithin:
		return fmt.Sprintf("within(%s, %g, %g, %g)", p.Object, p.X, p.Y, p.Radius)
	case KindAppears:
		return fmt.Sprintf("appears(%s)", p.Region)
	}
	return string(p.Kind)
}
