package live

import (
	"sync"

	"movingdb/internal/geom"
	"movingdb/internal/obs"
)

// Subscription is one registered standing query plus its delivery
// state: the edge-trigger memory (last evaluated truth, or the member
// set for appears) and a bounded ring of undelivered events. A slow
// consumer never blocks the notifier — when the ring is full the oldest
// event is dropped and the stream is marked lagged, which the SSE layer
// surfaces to the client as an explicit lagged marker. Events within a
// subscription are ordered (Seq is assigned under the ring lock) and
// delivered at least once per evaluated epoch while the ring keeps up.
type Subscription struct {
	id      string       // moguard: immutable
	pred    Predicate    // moguard: immutable
	bound   geom.Rect    // moguard: immutable
	key     int64        // moguard: immutable // region-index key; 0 for id-bound forms
	metrics *obs.Metrics // moguard: immutable // nil-safe

	mu      sync.Mutex
	state   bool                // moguard: guarded by mu // id-bound forms: last evaluated truth
	members map[string]struct{} // moguard: guarded by mu // appears: objects currently inside
	buf     []Event             // moguard: guarded by mu // ring storage, fixed capacity
	head    int                 // moguard: guarded by mu // ring read cursor
	n       int                 // moguard: guarded by mu // ring occupancy
	seq     uint64              // moguard: guarded by mu // last assigned event sequence
	drops   uint64              // moguard: guarded by mu // events evicted over the lifetime
	lagged  bool                // moguard: guarded by mu // eviction since the last Take
	closed  bool                // moguard: guarded by mu

	ch     chan struct{} // moguard: immutable // new-events signal, capacity 1
	doneCh chan struct{} // moguard: immutable // closed on unsubscribe / registry close
}

// ID returns the subscription identifier clients address streams by.
func (s *Subscription) ID() string { return s.id }

// Predicate returns the standing query.
func (s *Subscription) Predicate() Predicate { return s.pred }

// pushLocked appends an event to the ring, assigning its sequence
// number, evicting the oldest event when full. Caller holds s.mu.
func (s *Subscription) pushLocked(e Event) (dropped bool) {
	s.seq++
	e.Seq = s.seq
	if s.n == len(s.buf) {
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		s.drops++
		dropped = true
		if !s.lagged {
			s.lagged = true
			s.metrics.RecordLiveLagged()
		}
	}
	s.buf[(s.head+s.n)%len(s.buf)] = e
	s.n++
	select {
	case s.ch <- struct{}{}:
	default:
	}
	return dropped
}

// Take removes and returns every buffered event, oldest first, plus
// whether the stream lagged (dropped events) since the previous Take;
// the lagged flag clears.
func (s *Subscription) Take() ([]Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lagged := s.lagged
	s.lagged = false
	if s.n == 0 {
		return nil, lagged
	}
	out := make([]Event, 0, s.n)
	for i := 0; i < s.n; i++ {
		out = append(out, s.buf[(s.head+i)%len(s.buf)])
	}
	s.head, s.n = 0, 0
	return out, lagged
}

// Wait returns the channel signalled when new events are buffered.
func (s *Subscription) Wait() <-chan struct{} { return s.ch }

// Done returns the channel closed when the subscription ends —
// unsubscribe or registry shutdown.
func (s *Subscription) Done() <-chan struct{} { return s.doneCh }

// close ends the stream. Idempotent.
func (s *Subscription) close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.doneCh)
	}
	s.mu.Unlock()
}

// Info is the JSON description served at GET /v1/subscribe/{id}.
type Info struct {
	ID        string `json:"subscription_id"`
	Predicate string `json:"predicate"`
	Seq       uint64 `json:"seq"`
	Buffered  int    `json:"buffered"`
	Dropped   uint64 `json:"dropped"`
	Lagged    bool   `json:"lagged"`
	Active    bool   `json:"active"`
}

// Info snapshots the subscription's delivery state.
func (s *Subscription) Info() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Info{
		ID:        s.id,
		Predicate: s.pred.String(),
		Seq:       s.seq,
		Buffered:  s.n,
		Dropped:   s.drops,
		Lagged:    s.lagged,
		Active:    !s.closed,
	}
}
