package units

import (
	"fmt"
	"slices"

	"movingdb/internal/geom"
	"movingdb/internal/spatial"
	"movingdb/internal/temporal"
)

// UPoints is the upoints unit type (Section 3.2.6): a set of linearly
// moving points that never coincide during the open unit interval.
// Motions are stored in the lexicographic MPoint order, the canonical
// subarray order of Section 4.2.
type UPoints struct {
	Iv temporal.Interval
	Ms []MPoint
}

// NewUPoints validates the upoints carrier set constraints: at least one
// motion, and no two motions meeting inside the open interval (or at the
// single instant, for degenerate intervals). The check is exact: two
// linear motions can only meet at the roots of linear equations.
func NewUPoints(iv temporal.Interval, ms ...MPoint) (UPoints, error) {
	if len(ms) == 0 {
		return UPoints{}, fmt.Errorf("%w: upoints needs at least one motion", ErrInvalidUnit)
	}
	sorted := make([]MPoint, len(ms))
	copy(sorted, ms)
	slices.SortFunc(sorted, MPoint.Cmp)
	u := UPoints{Iv: iv, Ms: sorted}
	if err := u.Validate(); err != nil {
		return UPoints{}, err
	}
	return u, nil
}

// MustUPoints is like NewUPoints but panics on invalid input.
func MustUPoints(iv temporal.Interval, ms ...MPoint) UPoints {
	u, err := NewUPoints(iv, ms...)
	if err != nil {
		panic(err)
	}
	return u
}

// Interval returns the unit interval.
func (u UPoints) Interval() temporal.Interval { return u.Iv }

// WithInterval returns the same motions on a different interval. The
// caller is responsible for the new interval being a sub-interval of a
// validated one (motions that never meet on an interval never meet on
// its sub-intervals, so restriction is always safe).
func (u UPoints) WithInterval(iv temporal.Interval) UPoints {
	return UPoints{Iv: iv, Ms: u.Ms}
}

// EqualFunc reports whether two units carry the same motion set.
func (u UPoints) EqualFunc(v UPoints) bool { return slices.Equal(u.Ms, v.Ms) }

// Validate re-checks the carrier set constraints.
func (u UPoints) Validate() error {
	for i := 1; i < len(u.Ms); i++ {
		if u.Ms[i].Cmp(u.Ms[i-1]) < 0 {
			return fmt.Errorf("%w: upoints motions out of order", ErrInvalidUnit)
		}
	}
	for i := 0; i < len(u.Ms); i++ {
		for j := i + 1; j < len(u.Ms); j++ {
			ts, always := u.Ms[i].meetTimes(u.Ms[j])
			if always {
				return fmt.Errorf("%w: motions %v and %v identical", ErrInvalidUnit, u.Ms[i], u.Ms[j])
			}
			for _, r := range ts {
				if u.Iv.ContainsOpen(temporal.Instant(r)) {
					return fmt.Errorf("%w: motions %v and %v meet at t=%g inside the unit", ErrInvalidUnit, u.Ms[i], u.Ms[j], r)
				}
			}
		}
	}
	return nil
}

// Eval is the ι function: the point set at time t.
func (u UPoints) Eval(t temporal.Instant) spatial.Points {
	pts := make([]geom.Point, 0, len(u.Ms))
	for _, m := range u.Ms {
		pts = append(pts, m.Eval(t))
	}
	return spatial.NewPoints(pts...)
}

// Cube returns the 3D bounding cube over the unit interval.
func (u UPoints) Cube() geom.Cube {
	r := geom.EmptyRect()
	for _, m := range u.Ms {
		r = r.ExtendPoint(m.Eval(u.Iv.Start))
		r = r.ExtendPoint(m.Eval(u.Iv.End))
	}
	return geom.Cube{Rect: r, MinT: float64(u.Iv.Start), MaxT: float64(u.Iv.End)}
}

// Len returns the number of moving points.
func (u UPoints) Len() int { return len(u.Ms) }

// String renders the unit.
func (u UPoints) String() string { return fmt.Sprintf("%v ↦ %v", u.Iv, u.Ms) }
