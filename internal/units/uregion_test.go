package units

import (
	"math"
	"testing"

	"movingdb/internal/geom"
	"movingdb/internal/temporal"
)

// translatingMCycle returns a moving cycle translating the given ring by
// velocity (vx, vy).
func translatingMCycle(ring []geom.Point, vx, vy float64) MCycle {
	c := make(MCycle, 0, len(ring))
	for _, p := range ring {
		c = append(c, MPoint{X0: p.X, X1: vx, Y0: p.Y, Y1: vy})
	}
	return c
}

// scalingMCycle returns a moving cycle that linearly interpolates ring0
// at t0 to ring1 at t1 (vertex i to vertex i).
func scalingMCycle(t0 temporal.Instant, ring0 []geom.Point, t1 temporal.Instant, ring1 []geom.Point) MCycle {
	c := make(MCycle, 0, len(ring0))
	for i := range ring0 {
		m, err := MPointThrough(t0, ring0[i], t1, ring1[i])
		if err != nil {
			panic(err)
		}
		c = append(c, m)
	}
	return c
}

func sqRing(x, y, w float64) []geom.Point {
	return []geom.Point{geom.Pt(x, y), geom.Pt(x+w, y), geom.Pt(x+w, y+w), geom.Pt(x, y+w)}
}

func TestURegionTranslating(t *testing.T) {
	u, err := NewURegion(iv(0, 10), MFace{Outer: translatingMCycle(sqRing(0, 0, 4), 1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	r := u.Eval(3)
	if r.NumFaces() != 1 || r.Area() != 16 {
		t.Errorf("Eval(3): faces=%d area=%v", r.NumFaces(), r.Area())
	}
	if !r.ContainsPoint(geom.Pt(5, 2)) || r.ContainsPoint(geom.Pt(1, 2)) {
		t.Error("translated region membership wrong")
	}
	if u.NumMSegs() != 4 {
		t.Errorf("NumMSegs = %d", u.NumMSegs())
	}
}

func TestURegionWithHole(t *testing.T) {
	u, err := NewURegion(iv(0, 10), MFace{
		Outer: translatingMCycle(sqRing(0, 0, 10), 1, 0),
		Holes: []MCycle{translatingMCycle(sqRing(3, 3, 2), 1, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := u.Eval(2)
	if r.NumCycles() != 2 || r.Area() != 100-4 {
		t.Errorf("Eval(2): cycles=%d area=%v", r.NumCycles(), r.Area())
	}
	if r.ContainsPoint(geom.Pt(6, 4)) {
		t.Error("hole moved with region; point should be in hole")
	}
}

func TestURegionGrowing(t *testing.T) {
	// A square growing from side 2 to side 6.
	u, err := NewURegion(iv(0, 4), MFace{
		Outer: scalingMCycle(0, sqRing(0, 0, 2), 4, sqRing(-2, -2, 6)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Eval(2).Area(); got != 16 {
		t.Errorf("mid area = %v", got)
	}
}

func TestURegionRejectsCollapse(t *testing.T) {
	// Square collapsing to a point at t=2, inside the open interval.
	collapsed := []geom.Point{geom.Pt(2, 2), geom.Pt(2, 2), geom.Pt(2, 2), geom.Pt(2, 2)}
	_ = collapsed
	c := make(MCycle, 4)
	ring := sqRing(0, 0, 4)
	for i, p := range ring {
		m, _ := MPointThrough(0, p, 2, geom.Pt(2, 2))
		c[i] = m
	}
	if _, err := NewURegion(iv(0, 4), MFace{Outer: c}); err == nil {
		t.Error("interior collapse accepted")
	}
	// Collapse exactly at the closed end point is allowed.
	if _, err := NewURegion(iv(0, 2), MFace{Outer: c}); err != nil {
		t.Errorf("end point collapse rejected: %v", err)
	}
}

func TestURegionRejectsSelfIntersection(t *testing.T) {
	// Two vertices crossing each other makes the cycle self-intersect
	// mid-unit: vertex 1 and 2 swap x positions.
	ring0 := []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4)}
	ring1 := []geom.Point{geom.Pt(0, 0), geom.Pt(-4, 0), geom.Pt(-4, 4), geom.Pt(0, 4)}
	// This mirrors the square through the y-axis; on the way the cycle
	// degenerates (all x collapse at the crossing instant).
	c := scalingMCycle(0, ring0, 4, ring1)
	if _, err := NewURegion(iv(0, 4), MFace{Outer: c}); err == nil {
		t.Error("mirroring (degenerating) cycle accepted")
	}
}

func TestURegionRejectsFaceCollision(t *testing.T) {
	// Two faces moving toward each other overlap mid-unit.
	left := MFace{Outer: translatingMCycle(sqRing(0, 0, 4), 1, 0)}
	right := MFace{Outer: translatingMCycle(sqRing(10, 0, 4), -1, 0)}
	if _, err := NewURegion(iv(0, 10), left, right); err == nil {
		t.Error("colliding faces accepted")
	}
	// Restricted so that they only touch at the end instant: ok.
	// left spans x ∈ [t, 4+t], right spans [10−t, 14−t]; touch at t=3.
	if _, err := NewURegion(iv(0, 3), left, right); err != nil {
		t.Errorf("touch at end instant rejected: %v", err)
	}
}

func TestURegionEvalBoundaryCollapse(t *testing.T) {
	// Square collapsing to a point exactly at the end: boundary eval
	// yields the empty region.
	c := make(MCycle, 4)
	for i, p := range sqRing(0, 0, 4) {
		m, _ := MPointThrough(0, p, 2, geom.Pt(2, 2))
		c[i] = m
	}
	u := MustURegion(iv(0, 2), MFace{Outer: c})
	r, err := u.EvalBoundary(2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsEmpty() {
		t.Errorf("collapsed boundary region = %v", r)
	}
	// At the start it is the full square.
	r0, ok := u.EvalAt(0)
	if !ok || r0.Area() != 16 {
		t.Errorf("EvalAt(0) = %v, %v", r0, ok)
	}
}

func TestURegionEvalBoundaryOverlapCancel(t *testing.T) {
	// Two faces that touch along a whole edge exactly at the end
	// instant: the shared boundary pieces cancel (odd/even rule) and the
	// two squares fuse into one face.
	left := MFace{Outer: translatingMCycle(sqRing(0, 0, 4), 1, 0)}    // spans [t, 4+t]
	right := MFace{Outer: translatingMCycle(sqRing(10, 0, 4), -1, 0)} // spans [10−t, 14−t]
	u := MustURegion(iv(0, 3), left, right)
	r, err := u.EvalBoundary(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumFaces() != 1 {
		t.Fatalf("fused faces = %d (region %v)", r.NumFaces(), r)
	}
	if got := r.Area(); got != 32 {
		t.Errorf("fused area = %v", got)
	}
	if got := r.Perimeter(); got != 2*(8+4) {
		t.Errorf("fused perimeter = %v", got)
	}
}

func TestURegionCube(t *testing.T) {
	u := MustURegion(iv(0, 10), MFace{Outer: translatingMCycle(sqRing(0, 0, 4), 1, 1)})
	c := u.Cube()
	if c.Rect.MaxX != 14 || c.Rect.MaxY != 14 || c.MinT != 0 || c.MaxT != 10 {
		t.Errorf("Cube = %+v", c)
	}
}

func TestURegionEqualFunc(t *testing.T) {
	f := MFace{Outer: translatingMCycle(sqRing(0, 0, 4), 1, 0)}
	u := MustURegion(iv(0, 1), f)
	v := u.WithInterval(iv(2, 3))
	if !u.EqualFunc(v) {
		t.Error("EqualFunc must ignore intervals")
	}
	g := MFace{Outer: translatingMCycle(sqRing(0, 0, 5), 1, 0)}
	w := MustURegion(iv(0, 1), g)
	if u.EqualFunc(w) {
		t.Error("different faces equal")
	}
}

func TestUPointInsideURegionStatic(t *testing.T) {
	// Static square, point flying straight through it.
	ur := MustURegion(iv(0, 10), MFace{Outer: translatingMCycle(sqRing(4, -2, 4), 0, 0)})
	up, _ := UPointBetween(iv(0, 10), geom.Pt(0, 0), geom.Pt(10, 0))
	ubs := UPointInsideURegion(up, ur)
	// Crossings at x=4 (t=4) and x=8 (t=8): false before, true inside,
	// false after.
	if len(ubs) != 3 {
		t.Fatalf("units = %v", ubs)
	}
	if ubs[0].V || !ubs[1].V || ubs[2].V {
		t.Errorf("values = %v %v %v", ubs[0].V, ubs[1].V, ubs[2].V)
	}
	if ubs[1].Iv.Start != 4 || ubs[1].Iv.End != 8 || !ubs[1].Iv.LC || !ubs[1].Iv.RC {
		t.Errorf("inside interval = %v (want [4, 8])", ubs[1].Iv)
	}
	if ubs[0].Iv.RC || ubs[2].Iv.LC {
		t.Error("false intervals must be open toward the crossing")
	}
}

func TestUPointInsideURegionMoving(t *testing.T) {
	// Region moving right at speed 1, point moving right at speed 2
	// starting behind: it catches up, passes through, and exits.
	ur := MustURegion(iv(0, 20), MFace{Outer: translatingMCycle(sqRing(10, -5, 10), 1, 0)})
	up, _ := UPointBetween(iv(0, 20), geom.Pt(0, 0), geom.Pt(40, 0))
	ubs := UPointInsideURegion(up, ur)
	// Catch-up: point at 2t, region spans [10+t, 20+t]; enter when
	// 2t = 10+t → t=10; exit when 2t = 20+t → t=20 (the end).
	if len(ubs) != 2 {
		t.Fatalf("units = %v", ubs)
	}
	if ubs[0].V || !ubs[1].V {
		t.Errorf("values wrong: %v", ubs)
	}
	if ubs[1].Iv.Start != 10 || ubs[1].Iv.End != 20 {
		t.Errorf("inside = %v", ubs[1].Iv)
	}
}

func TestUPointInsideURegionNeverInside(t *testing.T) {
	ur := MustURegion(iv(0, 10), MFace{Outer: translatingMCycle(sqRing(100, 100, 5), 0, 0)})
	up, _ := UPointBetween(iv(0, 10), geom.Pt(0, 0), geom.Pt(1, 1))
	ubs := UPointInsideURegion(up, ur)
	if len(ubs) != 1 || ubs[0].V {
		t.Fatalf("units = %v", ubs)
	}
	if ubs[0].Iv != iv(0, 10) {
		t.Errorf("interval = %v", ubs[0].Iv)
	}
}

func TestUPointInsideURegionAlwaysInside(t *testing.T) {
	ur := MustURegion(iv(0, 10), MFace{Outer: translatingMCycle(sqRing(-100, -100, 200), 0, 0)})
	up, _ := UPointBetween(iv(2, 8), geom.Pt(0, 0), geom.Pt(1, 1))
	ubs := UPointInsideURegion(up, ur)
	if len(ubs) != 1 || !ubs[0].V {
		t.Fatalf("units = %v", ubs)
	}
	if ubs[0].Iv != iv(2, 8) {
		t.Errorf("interval = %v (intersection of unit intervals)", ubs[0].Iv)
	}
}

func TestUPointInsideURegionWithHole(t *testing.T) {
	// Point flies through a region with a hole: inside, hole (outside),
	// inside again.
	ur := MustURegion(iv(0, 12), MFace{
		Outer: translatingMCycle(sqRing(1, -4, 10), 0, 0),
		Holes: []MCycle{translatingMCycle(sqRing(4, -2, 4), 0, 0)},
	})
	up, _ := UPointBetween(iv(0, 12), geom.Pt(0, 0), geom.Pt(12, 0))
	ubs := UPointInsideURegion(up, ur)
	// Crossings at x=1, 4, 8, 11 → t the same (unit speed).
	wantV := []bool{false, true, false, true, false}
	if len(ubs) != len(wantV) {
		t.Fatalf("units = %v", ubs)
	}
	for i, u := range ubs {
		if u.V != wantV[i] {
			t.Errorf("piece %d = %v, want %v (iv %v)", i, u.V, wantV[i], u.Iv)
		}
	}
	// Hole piece is open, inside pieces closed.
	if ubs[2].Iv.LC || ubs[2].Iv.RC {
		t.Error("hole interval must be open")
	}
	if !ubs[1].Iv.LC || !ubs[1].Iv.RC {
		t.Error("inside intervals must be closed")
	}
}

func TestUPointInsideDiagonal(t *testing.T) {
	// Diagonal flight through a moving diamond — checks non-axis-aligned
	// stabbing.
	diamond := []geom.Point{geom.Pt(5, 0), geom.Pt(10, 5), geom.Pt(5, 10), geom.Pt(0, 5)}
	ur := MustURegion(iv(0, 10), MFace{Outer: translatingMCycle(diamond, 0.5, 0)})
	up, _ := UPointBetween(iv(0, 10), geom.Pt(0, 0), geom.Pt(10, 10))
	ubs := UPointInsideURegion(up, ur)
	var trueDur float64
	for _, u := range ubs {
		if u.V {
			trueDur += u.Iv.Duration()
		}
	}
	if trueDur <= 0 {
		t.Fatalf("no inside time found: %v", ubs)
	}
	// Verify against dense sampling.
	var sampled float64
	const steps = 10000
	for k := 0; k <= steps; k++ {
		tt := temporal.Instant(10 * float64(k) / steps)
		if pointInRegionAt(up.M, ur, tt) {
			sampled += 10.0 / steps
		}
	}
	if math.Abs(trueDur-sampled) > 0.01 {
		t.Errorf("inside duration %v vs sampled %v", trueDur, sampled)
	}
}
