package units

import (
	"fmt"
	"math"

	"movingdb/internal/temporal"
)

// UReal is the ureal unit type (Section 3.2.5): over its interval the
// value is the polynomial a·t² + b·t + c, or its square root when Root
// is set. Square roots of quadratics are exactly what time-dependent
// Euclidean distances between linearly moving points require, which is
// the paper's motivation for this function class.
type UReal struct {
	Iv      temporal.Interval
	A, B, C float64
	Root    bool
}

// NewUReal returns the ureal unit (a, b, c, r) over iv. When r is set,
// callers should ensure the quadratic is non-negative on iv; Eval
// reports NaN where it is not.
func NewUReal(iv temporal.Interval, a, b, c float64, root bool) UReal {
	return UReal{Iv: iv, A: a, B: b, C: c, Root: root}
}

// ConstUReal returns a constant real unit.
func ConstUReal(iv temporal.Interval, v float64) UReal { return UReal{Iv: iv, C: v} }

// Interval returns the unit interval.
func (u UReal) Interval() temporal.Interval { return u.Iv }

// WithInterval returns the same function on a different interval.
func (u UReal) WithInterval(iv temporal.Interval) UReal {
	u.Iv = iv
	return u
}

// EqualFunc reports whether two units describe the same function of
// time (identical representation).
func (u UReal) EqualFunc(v UReal) bool {
	return u.A == v.A && u.B == v.B && u.C == v.C && u.Root == v.Root
}

// Eval is the ι function of Section 3.2.5.
func (u UReal) Eval(t temporal.Instant) float64 {
	f := float64(t)
	v := u.A*f*f + u.B*f + u.C
	if u.Root {
		return math.Sqrt(v)
	}
	return v
}

// poly evaluates the underlying quadratic (before any square root).
func (u UReal) poly(t float64) float64 { return u.A*t*t + u.B*t + u.C }

// extremumTimes returns the candidate instants for extrema of the unit
// function within the unit interval: the interval bounds and, when the
// quadratic has an interior vertex, that vertex.
func (u UReal) extremumTimes() []temporal.Instant {
	ts := []temporal.Instant{u.Iv.Start, u.Iv.End}
	//molint:ignore float-eq vertex existence test; a near-zero quadratic coefficient puts the vertex far outside the unit interval where ContainsOpen discards it
	if u.A != 0 {
		v := temporal.Instant(-u.B / (2 * u.A))
		if u.Iv.ContainsOpen(v) {
			ts = append(ts, v)
		}
	}
	return ts
}

// Min returns the minimum value the unit takes on its interval and an
// instant where it is attained. For open interval ends the infimum is
// still reported (it is attained in the closure).
func (u UReal) Min() (float64, temporal.Instant) {
	best, at := math.Inf(1), u.Iv.Start
	for _, t := range u.extremumTimes() {
		//molint:ignore float-eq exact tie-break so the earliest attaining instant wins; a tolerant tie would misreport where the extremum is attained
		if v := u.Eval(t); v < best || (v == best && t < at) {
			best, at = v, t
		}
	}
	return best, at
}

// Max returns the maximum value on the interval and an instant where it
// is attained.
func (u UReal) Max() (float64, temporal.Instant) {
	best, at := math.Inf(-1), u.Iv.Start
	for _, t := range u.extremumTimes() {
		//molint:ignore float-eq exact tie-break so the earliest attaining instant wins; a tolerant tie would misreport where the extremum is attained
		if v := u.Eval(t); v > best || (v == best && t < at) {
			best, at = v, t
		}
	}
	return best, at
}

// TimesAt returns the instants within the unit interval at which the
// unit function equals v; all reports an identically-v function.
func (u UReal) TimesAt(v float64) (ts []temporal.Instant, all bool) {
	target := v
	if u.Root {
		if v < 0 {
			return nil, false
		}
		target = v * v
	}
	roots, everywhere := QuadRoots(u.A, u.B, u.C-target)
	if everywhere {
		return nil, true
	}
	for _, r := range roots {
		if t := temporal.Instant(r); u.Iv.Contains(t) {
			ts = append(ts, t)
		}
	}
	return ts, false
}

// InstantsNear returns the instants within the unit interval at which
// the unit function comes within tol of v: the roots of the exact
// equation plus any interval endpoint or interior vertex whose value is
// within tol. It is the robust companion of TimesAt for extremum
// restriction (atmin/atmax), where the target value stems from a
// different unit's floating point computation and exact root solving can
// miss the attained extremum by one ulp. all reports a function within
// tol of v everywhere on the interval.
func (u UReal) InstantsNear(v, tol float64) (ts []temporal.Instant, all bool) {
	exact, everywhere := u.TimesAt(v)
	if everywhere {
		return nil, true
	}
	cand := append([]temporal.Instant{}, exact...)
	for _, t := range u.extremumTimes() {
		if u.Iv.Contains(t) && math.Abs(u.Eval(t)-v) <= tol {
			cand = append(cand, t)
		}
	}
	// Sort and deduplicate (near-duplicates within no tolerance — exact
	// instant equality only; distinct instants are distinct results).
	for i := 1; i < len(cand); i++ {
		for j := i; j > 0 && cand[j] < cand[j-1]; j-- {
			cand[j], cand[j-1] = cand[j-1], cand[j]
		}
	}
	out := cand[:0]
	for i, t := range cand {
		if i == 0 || t != cand[i-1] {
			out = append(out, t)
		}
	}
	return out, false
}

// CmpIntervals partitions the unit interval by the sign of
// (value − v): it returns the sub-intervals where the unit function is
// respectively less than, equal to, and greater than v. Equality pieces
// are degenerate instants unless the function is identically v.
func (u UReal) CmpIntervals(v float64) (less, equal, greater []temporal.Interval) {
	ts, all := u.TimesAt(v)
	if all {
		return nil, []temporal.Interval{u.Iv}, nil
	}
	classify := func(iv temporal.Interval, sample temporal.Instant) {
		val := u.Eval(sample)
		switch {
		case val < v:
			less = append(less, iv)
		case val > v:
			greater = append(greater, iv)
		default:
			equal = append(equal, iv)
		}
	}
	if u.Iv.IsDegenerate() {
		classify(u.Iv, u.Iv.Start)
		return less, equal, greater
	}
	// Interior crossings split the interval; boundary crossings, when
	// the boundary is closed, become their own degenerate pieces so each
	// emitted piece carries a single sign.
	cuts := []temporal.Instant{u.Iv.Start}
	for _, t := range ts {
		if u.Iv.ContainsOpen(t) {
			cuts = append(cuts, t)
		}
	}
	cuts = append(cuts, u.Iv.End)
	startLC, endRC := u.Iv.LC, u.Iv.RC
	//molint:ignore float-eq boundary attainment of the query value decides interval closure; the cut instants are roots of Eval−v, so attainment at a bound is exact by construction
	if startLC && u.Eval(u.Iv.Start) == v {
		classify(temporal.AtInstant(u.Iv.Start), u.Iv.Start)
		startLC = false
	}
	//molint:ignore float-eq boundary attainment of the query value decides interval closure; the cut instants are roots of Eval−v, so attainment at a bound is exact by construction
	if endRC && u.Eval(u.Iv.End) == v {
		classify(temporal.AtInstant(u.Iv.End), u.Iv.End)
		endRC = false
	}
	for k := 0; k+1 < len(cuts); k++ {
		lo, hi := cuts[k], cuts[k+1]
		if k > 0 {
			classify(temporal.AtInstant(lo), lo)
		}
		piece := temporal.Interval{
			Start: lo, End: hi,
			LC: k == 0 && startLC,
			RC: k+2 == len(cuts) && endRC,
		}
		mid := temporal.Instant((float64(lo) + float64(hi)) / 2)
		classify(piece, mid)
	}
	return less, equal, greater
}

// Add returns the pointwise sum of two non-root units on the given
// interval; ok is false if either unit has Root set (the class is not
// closed under addition of roots).
func (u UReal) Add(v UReal, iv temporal.Interval) (UReal, bool) {
	if u.Root || v.Root {
		return UReal{}, false
	}
	return UReal{Iv: iv, A: u.A + v.A, B: u.B + v.B, C: u.C + v.C}, true
}

// Sub returns the pointwise difference of two non-root units.
func (u UReal) Sub(v UReal, iv temporal.Interval) (UReal, bool) {
	if u.Root || v.Root {
		return UReal{}, false
	}
	return UReal{Iv: iv, A: u.A - v.A, B: u.B - v.B, C: u.C - v.C}, true
}

// Scale returns the unit function multiplied by the constant f ≥ 0 for
// root units (|f| would change the sign under the root), any f for
// polynomials.
func (u UReal) Scale(f float64) (UReal, bool) {
	if u.Root {
		if f < 0 {
			return UReal{}, false
		}
		g := f * f
		return UReal{Iv: u.Iv, A: u.A * g, B: u.B * g, C: u.C * g, Root: true}, true
	}
	return UReal{Iv: u.Iv, A: u.A * f, B: u.B * f, C: u.C * f}, true
}

// Neg returns the pointwise negation of a non-root unit.
func (u UReal) Neg() (UReal, bool) {
	if u.Root {
		return UReal{}, false
	}
	return UReal{Iv: u.Iv, A: -u.A, B: -u.B, C: -u.C}, true
}

// String renders the unit as "interval ↦ a·t²+b·t+c" (with √ markers).
func (u UReal) String() string {
	body := fmt.Sprintf("%g·t²%+g·t%+g", u.A, u.B, u.C)
	if u.Root {
		body = "√(" + body + ")"
	}
	return fmt.Sprintf("%v ↦ %s", u.Iv, body)
}

// ValueRange returns the set of values the unit function takes on its
// interval, as an interval over the reals with exact closure: a bound is
// closed iff it is attained at an instant belonging to the unit interval
// (an extremum at an open interval end is a limit, not a value).
func (u UReal) ValueRange() (lo, hi float64, loClosed, hiClosed bool) {
	lo, hi = math.Inf(1), math.Inf(-1)
	consider := func(t temporal.Instant) {
		v := u.Eval(t)
		attained := u.Iv.Contains(t)
		switch {
		case v < lo:
			lo, loClosed = v, attained
		//molint:ignore float-eq closure bookkeeping: both sides are Eval results at candidate extremum instants, identical bits when they denote the same bound
		case v == lo && attained:
			loClosed = true
		}
		switch {
		case v > hi:
			hi, hiClosed = v, attained
		//molint:ignore float-eq closure bookkeeping: both sides are Eval results at candidate extremum instants, identical bits when they denote the same bound
		case v == hi && attained:
			hiClosed = true
		}
	}
	for _, t := range u.extremumTimes() {
		consider(t)
	}
	return lo, hi, loClosed, hiClosed
}
