package units

import (
	"fmt"

	"movingdb/internal/geom"
	"movingdb/internal/temporal"
)

// UPoint is the upoint unit type (Section 3.2.6): an interval paired
// with a linearly moving point. It is a fixed size unit.
type UPoint struct {
	Iv temporal.Interval
	M  MPoint
}

// NewUPoint returns the upoint unit with motion m over iv.
func NewUPoint(iv temporal.Interval, m MPoint) UPoint { return UPoint{Iv: iv, M: m} }

// UPointBetween returns the unit moving linearly from p at iv.Start to q
// at iv.End. The interval must not be degenerate.
func UPointBetween(iv temporal.Interval, p, q geom.Point) (UPoint, error) {
	m, err := MPointThrough(iv.Start, p, iv.End, q)
	if err != nil {
		return UPoint{}, err
	}
	return UPoint{Iv: iv, M: m}, nil
}

// StaticUPoint returns the unit resting at p over iv.
func StaticUPoint(iv temporal.Interval, p geom.Point) UPoint {
	return UPoint{Iv: iv, M: StaticMPoint(p)}
}

// Interval returns the unit interval.
func (u UPoint) Interval() temporal.Interval { return u.Iv }

// WithInterval returns the same motion on a different interval.
func (u UPoint) WithInterval(iv temporal.Interval) UPoint {
	u.Iv = iv
	return u
}

// EqualFunc reports whether two units have the same motion.
func (u UPoint) EqualFunc(v UPoint) bool { return u.M == v.M }

// Eval is the ι function: the position at time t.
func (u UPoint) Eval(t temporal.Instant) geom.Point { return u.M.Eval(t) }

// StartPoint returns the position at the start of the unit interval.
func (u UPoint) StartPoint() geom.Point { return u.M.Eval(u.Iv.Start) }

// EndPoint returns the position at the end of the unit interval.
func (u UPoint) EndPoint() geom.Point { return u.M.Eval(u.Iv.End) }

// BBox returns the spatial bounding box over the unit interval; the
// extremes are attained at the interval ends because the motion is
// linear.
func (u UPoint) BBox() geom.Rect {
	return geom.EmptyRect().ExtendPoint(u.StartPoint()).ExtendPoint(u.EndPoint())
}

// Cube returns the 3D bounding cube stored with the unit (Section 4.2).
func (u UPoint) Cube() geom.Cube {
	return geom.Cube{Rect: u.BBox(), MinT: float64(u.Iv.Start), MaxT: float64(u.Iv.End)}
}

// TrajectorySegment returns the spatial projection of the unit: the
// segment from start to end position; ok is false when the point rests
// (the projection is a single point, contributing to the points part of
// the projection rather than the line part).
func (u UPoint) TrajectorySegment() (geom.Segment, bool) {
	p, q := u.StartPoint(), u.EndPoint()
	if p == q {
		return geom.Segment{}, false
	}
	s, err := geom.NewSegment(p, q)
	if err != nil {
		return geom.Segment{}, false
	}
	return s, true
}

// DistanceTo returns the time-dependent Euclidean distance between two
// upoint units as a ureal over the given interval — the square root of a
// quadratic, the paper's motivating example for the ureal function
// class.
func (u UPoint) DistanceTo(v UPoint, iv temporal.Interval) UReal {
	dx0, dx1 := u.M.X0-v.M.X0, u.M.X1-v.M.X1
	dy0, dy1 := u.M.Y0-v.M.Y0, u.M.Y1-v.M.Y1
	// |d(t)|² = (dx0+dx1·t)² + (dy0+dy1·t)²
	a := dx1*dx1 + dy1*dy1
	b := 2 * (dx0*dx1 + dy0*dy1)
	c := dx0*dx0 + dy0*dy0
	return UReal{Iv: iv, A: a, B: b, C: c, Root: true}
}

// DistanceToPoint returns the time-dependent distance to a fixed point.
func (u UPoint) DistanceToPoint(p geom.Point, iv temporal.Interval) UReal {
	return u.DistanceTo(StaticUPoint(iv, p), iv)
}

// SpeedUReal returns the (constant) speed as a ureal unit.
func (u UPoint) SpeedUReal() UReal { return ConstUReal(u.Iv, u.M.Speed()) }

// Passes reports whether the unit's point is at p at some instant of the
// unit interval, and returns the earliest such instant.
func (u UPoint) Passes(p geom.Point) (temporal.Instant, bool) {
	ts, always := u.M.meetTimes(StaticMPoint(p))
	if always {
		return u.Iv.Start, true
	}
	for _, r := range ts {
		if t := temporal.Instant(r); u.Iv.Contains(t) {
			return t, true
		}
	}
	return 0, false
}

// String renders the unit.
func (u UPoint) String() string { return fmt.Sprintf("%v ↦ %v", u.Iv, u.M) }
