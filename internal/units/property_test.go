package units

import (
	"math/rand"
	"testing"

	"movingdb/internal/geom"
	"movingdb/internal/temporal"
)

// These tests verify that the exact (root-analysis based) validation of
// the spatial unit types agrees with dense time sampling: a unit
// accepted by NewX must satisfy the static carrier set constraints at
// every sampled inner instant, and a unit rejected must violate them at
// some instant (when the rejection stems from the for-all-instants
// condition).

func randMotion(rng *rand.Rand) MPoint {
	return MPoint{
		X0: float64(rng.Intn(21) - 10), X1: float64(rng.Intn(7) - 3),
		Y0: float64(rng.Intn(21) - 10), Y1: float64(rng.Intn(7) - 3),
	}
}

func TestUPointsValidationAgreesWithSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const trials = 400
	accepted, rejected := 0, 0
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(3)
		ms := make([]MPoint, n)
		for i := range ms {
			ms[i] = randMotion(rng)
		}
		interval := iv(0, 10)
		u, err := NewUPoints(interval, ms...)
		coincide := func(tt temporal.Instant) bool {
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if ms[i].Eval(tt) == ms[j].Eval(tt) {
						return true
					}
				}
			}
			return false
		}
		if err == nil {
			accepted++
			for k := 1; k < 100; k++ {
				tt := temporal.Instant(10 * float64(k) / 100)
				if coincide(tt) {
					t.Fatalf("trial %d: accepted unit %v has coinciding points at %v", trial, u, tt)
				}
			}
		} else {
			rejected++
		}
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("degenerate trial mix: %d accepted, %d rejected", accepted, rejected)
	}
}

func TestULineValidationAgreesWithSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const trials = 300
	accepted := 0
	for trial := 0; trial < trials; trial++ {
		// Build 2–3 translating (hence coplanar) random segments.
		n := 2 + rng.Intn(2)
		ms := make([]MSeg, 0, n)
		for i := 0; i < n; i++ {
			p := geom.Pt(float64(rng.Intn(9)), float64(rng.Intn(9)))
			q := geom.Pt(float64(rng.Intn(9)), float64(rng.Intn(9)))
			if p == q {
				q.X++
			}
			vx, vy := float64(rng.Intn(5)-2), float64(rng.Intn(5)-2)
			ms = append(ms, MSeg{
				S: MPoint{X0: p.X, X1: vx, Y0: p.Y, Y1: vy},
				E: MPoint{X0: q.X, X1: vx, Y0: q.Y, Y1: vy},
			})
		}
		interval := iv(0, 8)
		_, err := NewULine(interval, ms...)
		if err != nil {
			continue
		}
		accepted++
		// Dense sampling: evaluated segments must never be collinear
		// overlapping inside the open interval.
		for k := 1; k < 64; k++ {
			tt := temporal.Instant(8 * float64(k) / 64)
			for i := 0; i < len(ms); i++ {
				si, ok1 := ms[i].EvalSeg(tt)
				if !ok1 {
					t.Fatalf("trial %d: accepted uline degenerates at %v", trial, tt)
				}
				for j := i + 1; j < len(ms); j++ {
					sj, _ := ms[j].EvalSeg(tt)
					if geom.Collinear(si, sj) && geom.Overlap(si, sj) {
						t.Fatalf("trial %d: accepted uline overlaps at %v", trial, tt)
					}
				}
			}
		}
	}
	if accepted == 0 {
		t.Fatal("no trial accepted; generator too hostile")
	}
}

func TestInsideKernelAgreesWithSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		// Random translating convex-ish quad region and a random moving
		// point.
		cx, cy := float64(rng.Intn(20)), float64(rng.Intn(20))
		w := 4 + float64(rng.Intn(6))
		ring := []geom.Point{
			geom.Pt(cx, cy), geom.Pt(cx+w, cy), geom.Pt(cx+w, cy+w), geom.Pt(cx, cy+w),
		}
		vx, vy := float64(rng.Intn(5)-2), float64(rng.Intn(5)-2)
		mc := make(MCycle, 0, 4)
		for _, p := range ring {
			mc = append(mc, MPoint{X0: p.X, X1: vx, Y0: p.Y, Y1: vy})
		}
		ur := MustURegion(iv(0, 10), MFace{Outer: mc})
		up := UPoint{Iv: iv(0, 10), M: randMotion(rng)}

		pieces := UPointInsideURegion(up, ur)
		// Coverage: the pieces partition [0,10].
		var dur float64
		for _, p := range pieces {
			dur += p.Iv.Duration()
		}
		if dur < 10-1e-9 {
			t.Fatalf("trial %d: pieces cover %v of 10: %v", trial, dur, pieces)
		}
		// Sampled agreement away from piece boundaries.
		for k := 0; k <= 500; k++ {
			tt := temporal.Instant(10 * (float64(k) + 0.31) / 501)
			want := pointInRegionAt(up.M, ur, tt)
			var got, found bool
			for _, p := range pieces {
				if p.Iv.Contains(tt) {
					got, found = p.V, true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: instant %v not covered", trial, tt)
			}
			// Skip instants within epsilon of a boundary crossing (the
			// plumbline and the kernel may disagree exactly on the
			// boundary, where both answers are defensible).
			nearBoundary := false
			for _, p := range pieces {
				if absf(float64(p.Iv.Start)-float64(tt)) < 1e-6 || absf(float64(p.Iv.End)-float64(tt)) < 1e-6 {
					nearBoundary = true
				}
			}
			if !nearBoundary && got != want {
				t.Fatalf("trial %d t=%v: kernel %v, plumbline %v (pieces %v)", trial, tt, got, want, pieces)
			}
		}
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
