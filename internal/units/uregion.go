package units

import (
	"fmt"
	"slices"

	"movingdb/internal/geom"
	"movingdb/internal/spatial"
	"movingdb/internal/temporal"
)

// MCycle is a moving cycle: a ring of moving vertices. Consecutive ring
// vertices span the moving segments (MSeg values) of the cycle; storing
// the ring rather than a bag of moving segments keeps the cycle
// structure explicit, which is exactly the extra structure the uregion
// data structure records with its mcycles subarray (Section 4.2).
type MCycle []MPoint

// MSegs returns the moving segments spanned by consecutive ring
// vertices.
func (c MCycle) MSegs() []MSeg {
	out := make([]MSeg, 0, len(c))
	for i := range c {
		out = append(out, MSeg{S: c[i], E: c[(i+1)%len(c)]})
	}
	return out
}

// Eval returns the vertex ring at time t.
func (c MCycle) Eval(t temporal.Instant) []geom.Point {
	out := make([]geom.Point, 0, len(c))
	for _, m := range c {
		out = append(out, m.Eval(t))
	}
	return out
}

// MFace is a moving face: an outer moving cycle with moving hole cycles
// (the MFace carrier set of Section 3.2.6).
type MFace struct {
	Outer MCycle
	Holes []MCycle
}

// MCycles returns all cycles of the face, outer first.
func (f MFace) MCycles() []MCycle {
	out := make([]MCycle, 0, 1+len(f.Holes))
	out = append(out, f.Outer)
	out = append(out, f.Holes...)
	return out
}

// URegion is the uregion unit type (Section 3.2.6): a set of moving
// faces whose evaluation is a valid region value at every instant of the
// open unit interval. Degeneracies (vertex collapses, overlapping
// boundary pieces) are permitted exactly at closed interval end points
// and are cleaned up by EvalBoundary.
type URegion struct {
	Iv    temporal.Interval
	Faces []MFace
}

// NewURegion validates the uregion carrier set constraints and returns
// the unit. As for uline, the for-all-instants condition is decided at
// the critical instants of all moving segment pairs plus one sample
// between consecutive critical instants; at each such instant the full
// static region validation runs.
func NewURegion(iv temporal.Interval, faces ...MFace) (URegion, error) {
	u := URegionUnchecked(iv, faces)
	if err := u.Validate(); err != nil {
		return URegion{}, err
	}
	return u, nil
}

// MustURegion is like NewURegion but panics on invalid input.
func MustURegion(iv temporal.Interval, faces ...MFace) URegion {
	u, err := NewURegion(iv, faces...)
	if err != nil {
		panic(err)
	}
	return u
}

// URegionUnchecked builds the unit without validation, for trusted
// construction paths such as workload generators.
func URegionUnchecked(iv temporal.Interval, faces []MFace) URegion {
	fs := make([]MFace, len(faces))
	copy(fs, faces)
	return URegion{Iv: iv, Faces: fs}
}

// Interval returns the unit interval.
func (u URegion) Interval() temporal.Interval { return u.Iv }

// WithInterval returns the same moving faces on a different
// (sub-)interval.
func (u URegion) WithInterval(iv temporal.Interval) URegion {
	return URegion{Iv: iv, Faces: u.Faces}
}

// EqualFunc reports whether two units carry the same moving faces.
func (u URegion) EqualFunc(v URegion) bool {
	if len(u.Faces) != len(v.Faces) {
		return false
	}
	for i := range u.Faces {
		if !slices.Equal(u.Faces[i].Outer, v.Faces[i].Outer) {
			return false
		}
		if len(u.Faces[i].Holes) != len(v.Faces[i].Holes) {
			return false
		}
		for j := range u.Faces[i].Holes {
			if !slices.Equal(u.Faces[i].Holes[j], v.Faces[i].Holes[j]) {
				return false
			}
		}
	}
	return true
}

// AllMSegs returns every moving segment of every cycle of every face.
func (u URegion) AllMSegs() []MSeg {
	var out []MSeg
	for _, f := range u.Faces {
		for _, c := range f.MCycles() {
			out = append(out, c.MSegs()...)
		}
	}
	return out
}

// NumMSegs returns the total number of moving segments.
func (u URegion) NumMSegs() int {
	n := 0
	for _, f := range u.Faces {
		for _, c := range f.MCycles() {
			n += len(c)
		}
	}
	return n
}

// Validate re-checks the uregion carrier set constraints: rings of at
// least three vertices, non-rotating moving segments, and a valid region
// value at every instant of the open interval.
func (u URegion) Validate() error {
	if len(u.Faces) == 0 {
		return fmt.Errorf("%w: uregion needs at least one face", ErrInvalidUnit)
	}
	for _, f := range u.Faces {
		for _, c := range f.MCycles() {
			if len(c) < 3 {
				return fmt.Errorf("%w: moving cycle with %d vertices", ErrInvalidUnit, len(c))
			}
			for _, g := range c.MSegs() {
				if g.S == g.E {
					return fmt.Errorf("%w: identical endpoint motions in moving cycle", ErrInvalidUnit)
				}
				if !g.Coplanar() {
					return fmt.Errorf("%w: rotating moving segment %v", ErrInvalidUnit, g)
				}
			}
		}
	}
	// Critical instants of all pairs; validity is constant in between.
	msegs := u.AllMSegs()
	var critical []float64
	for i := 0; i < len(msegs); i++ {
		ts, _ := msegs[i].DegenerateTimes()
		critical = append(critical, ts...)
		for j := i + 1; j < len(msegs); j++ {
			ts, _ := msegCriticalTimes(msegs[i], msegs[j])
			critical = append(critical, ts...)
		}
	}
	for _, t := range criticalSamples(u.Iv, critical) {
		if _, err := u.evalChecked(t); err != nil {
			return fmt.Errorf("%w: invalid region at t=%v: %v", ErrInvalidUnit, t, err)
		}
	}
	return nil
}

// evalChecked builds the region value at time t with full validation.
func (u URegion) evalChecked(t temporal.Instant) (spatial.Region, error) {
	faces := make([]spatial.Face, 0, len(u.Faces))
	for _, f := range u.Faces {
		oc, err := spatial.NewCycle(f.Outer.Eval(t)...)
		if err != nil {
			return spatial.Region{}, err
		}
		holes := make([]spatial.Cycle, 0, len(f.Holes))
		for _, h := range f.Holes {
			hc, err := spatial.NewCycle(h.Eval(t)...)
			if err != nil {
				return spatial.Region{}, err
			}
			holes = append(holes, hc)
		}
		face, err := spatial.NewFace(oc, holes...)
		if err != nil {
			return spatial.Region{}, err
		}
		faces = append(faces, face)
	}
	r, err := spatial.NewRegion(faces...)
	if err != nil {
		return spatial.Region{}, err
	}
	return r, nil
}

// Eval is the ι function for inner instants: the region value at time t,
// assembled through the trusted constructors (validity inside the open
// interval is guaranteed by the unit invariant). This is the
// uregion_atinstant subalgorithm of Section 5.1.
func (u URegion) Eval(t temporal.Instant) spatial.Region {
	faces := make([]spatial.Face, 0, len(u.Faces))
	for _, f := range u.Faces {
		oc := spatial.CycleUnchecked(f.Outer.Eval(t))
		holes := make([]spatial.Cycle, 0, len(f.Holes))
		for _, h := range f.Holes {
			holes = append(holes, spatial.CycleUnchecked(h.Eval(t)))
		}
		faces = append(faces, spatial.FaceUnchecked(oc, holes))
	}
	return spatial.RegionUnchecked(faces)
}

// EvalBoundary evaluates the unit at an end point of its interval,
// applying the ι_s/ι_e cleanup of Section 3.2.6: degenerated segments
// are dropped, collinear overlapping boundary pieces cancel by the
// odd/even fragment rule, and the face/cycle structure is rebuilt with
// the region close operation.
func (u URegion) EvalBoundary(t temporal.Instant) (spatial.Region, error) {
	var raw []geom.Segment
	for _, g := range u.AllMSegs() {
		if s, ok := g.EvalSeg(t); ok {
			raw = append(raw, s)
		}
	}
	return spatial.Close(spatial.OddParityFragments(raw))
}

// EvalAt dispatches to Eval or EvalBoundary according to the position of
// t in the unit interval, implementing the extended semantics f_u of
// Section 3.2.6.
func (u URegion) EvalAt(t temporal.Instant) (spatial.Region, bool) {
	if !u.Iv.Contains(t) {
		return spatial.Region{}, false
	}
	if !u.Iv.IsDegenerate() && (t == u.Iv.Start || t == u.Iv.End) {
		r, err := u.EvalBoundary(t)
		if err != nil {
			// A validated unit cleans up to a valid (possibly empty)
			// region; a failure here indicates an unchecked unit.
			return spatial.Region{}, false
		}
		return r, true
	}
	return u.Eval(t), true
}

// Cube returns the 3D bounding cube over the unit interval.
func (u URegion) Cube() geom.Cube {
	r := geom.EmptyRect()
	for _, g := range u.AllMSegs() {
		for _, t := range []temporal.Instant{u.Iv.Start, u.Iv.End} {
			p, q := g.Eval(t)
			r = r.ExtendPoint(p).ExtendPoint(q)
		}
	}
	return geom.Cube{Rect: r, MinT: float64(u.Iv.Start), MaxT: float64(u.Iv.End)}
}

// String renders the unit.
func (u URegion) String() string {
	return fmt.Sprintf("%v ↦ %d mfaces (%d msegs)", u.Iv, len(u.Faces), u.NumMSegs())
}
