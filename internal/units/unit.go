// Package units implements the temporal unit types of the sliced
// representation (Sections 3.2.4–3.2.6 of the paper): const(α) units,
// ureal (quadratics and square roots of quadratics), upoint (linearly
// moving points), upoints, uline and uregion (sets of non-rotating
// moving segments). Every unit pairs a time interval with a "simple
// function" representation and provides the evaluation function ι; the
// spatial set units additionally enforce the open-interval validity
// constraints of the carrier set definitions, decided exactly through
// root analysis of the involved (at most quadratic) polynomials.
package units

import "movingdb/internal/temporal"

// Unit is the interface shared by all temporal unit types. The type
// parameter U is the implementing type itself (a self-referential
// constraint), which lets the generic mapping type clip and compare
// units without reflection.
type Unit[U any] interface {
	// Interval returns the unit interval.
	Interval() temporal.Interval
	// WithInterval returns the same unit function on a different
	// interval. All unit functions use absolute time, so restricting or
	// shifting the interval never changes coefficients.
	WithInterval(temporal.Interval) U
	// EqualFunc reports whether two units have the same unit function
	// (ignoring their intervals); the mapping constructor uses it to
	// enforce that adjacent units carry distinct values and the concat
	// operation uses it to merge.
	EqualFunc(U) bool
}

// Defined reports whether the unit's function, restricted to instant t,
// is defined, i.e. whether t lies in the unit interval.
func Defined[U Unit[U]](u U, t temporal.Instant) bool {
	return u.Interval().Contains(t)
}
