package units

import (
	"errors"
	"fmt"

	"movingdb/internal/geom"
	"movingdb/internal/temporal"
)

// MPoint is a linearly moving point, the carrier set
// MPoint = {(x0, x1, y0, y1)} of Section 3.2.6: a line in (x, y, t)
// space, evaluated as ι(t) = (x0 + x1·t, y0 + y1·t).
type MPoint struct {
	X0, X1, Y0, Y1 float64
}

// ErrInvalidUnit reports a violation of a unit carrier set constraint.
var ErrInvalidUnit = errors.New("units: invalid unit")

// MPointThrough returns the linear motion passing through point p at
// time t0 and point q at time t1. It requires t0 ≠ t1.
func MPointThrough(t0 temporal.Instant, p geom.Point, t1 temporal.Instant, q geom.Point) (MPoint, error) {
	if t0 == t1 {
		// moguard: allocok error construction runs only on the degenerate-input path
		return MPoint{}, fmt.Errorf("%w: motion through two points needs distinct instants", ErrInvalidUnit)
	}
	dt := float64(t1 - t0)
	vx := (q.X - p.X) / dt
	vy := (q.Y - p.Y) / dt
	return MPoint{
		X0: p.X - vx*float64(t0), X1: vx,
		Y0: p.Y - vy*float64(t0), Y1: vy,
	}, nil
}

// StaticMPoint returns the motion that stays at p forever.
func StaticMPoint(p geom.Point) MPoint { return MPoint{X0: p.X, Y0: p.Y} }

// Eval is the ι function: the position at time t.
func (m MPoint) Eval(t temporal.Instant) geom.Point {
	return geom.Pt(m.X0+m.X1*float64(t), m.Y0+m.Y1*float64(t))
}

// Velocity returns the constant velocity vector (X1, Y1).
func (m MPoint) Velocity() geom.Point { return geom.Pt(m.X1, m.Y1) }

// Speed returns the constant scalar speed.
func (m MPoint) Speed() float64 { return m.Velocity().Norm() }

// Cmp orders MPoint values lexicographically on (X0, X1, Y0, Y1), the
// canonical storage order of upoints subarrays (Section 4.2).
func (m MPoint) Cmp(n MPoint) int {
	for _, d := range [4]float64{m.X0 - n.X0, m.X1 - n.X1, m.Y0 - n.Y0, m.Y1 - n.Y1} {
		if d < 0 {
			return -1
		}
		if d > 0 {
			return 1
		}
	}
	return 0
}

// meetTimes returns the instants at which the motions m and n coincide:
// none, one, or always (identical motion).
func (m MPoint) meetTimes(n MPoint) (ts []float64, always bool) {
	xs, xAll := QuadRoots(0, m.X1-n.X1, m.X0-n.X0)
	ys, yAll := QuadRoots(0, m.Y1-n.Y1, m.Y0-n.Y0)
	switch {
	case xAll && yAll:
		return nil, true
	case xAll:
		return ys, false
	case yAll:
		return xs, false
	}
	// Both coordinates have isolated solution times; they must agree.
	var out []float64
	for _, tx := range xs {
		for _, ty := range ys {
			if geom.ApproxEq(tx, ty) {
				out = append(out, tx)
			}
		}
	}
	return out, false
}

// String formats the motion as "(x0+x1·t, y0+y1·t)".
func (m MPoint) String() string {
	return fmt.Sprintf("(%g%+g·t, %g%+g·t)", m.X0, m.X1, m.Y0, m.Y1)
}

// MSeg is a moving segment: a pair of coplanar 3D lines (Section 3.2.6).
// The coplanarity condition is exactly the paper's non-rotation
// constraint — the segment keeps its direction while it moves. S and E
// are the motions of the two endpoints.
type MSeg struct {
	S, E MPoint
}

// NewMSeg validates the MSeg carrier set constraints: the endpoint
// motions are distinct and coplanar (non-rotating).
func NewMSeg(s, e MPoint) (MSeg, error) {
	if s == e {
		return MSeg{}, fmt.Errorf("%w: degenerate moving segment (identical endpoint motions)", ErrInvalidUnit)
	}
	ms := MSeg{S: s, E: e}
	if !ms.Coplanar() {
		return MSeg{}, fmt.Errorf("%w: rotating moving segment (endpoint lines not coplanar)", ErrInvalidUnit)
	}
	return ms, nil
}

// MustMSeg is like NewMSeg but panics on invalid input.
func MustMSeg(s, e MPoint) MSeg {
	ms, err := NewMSeg(s, e)
	if err != nil {
		panic(err)
	}
	return ms
}

// MSegThrough builds the moving segment that interpolates segment
// (p0, q0) at time t0 to segment (p1, q1) at time t1, mapping p0→p1 and
// q0→q1. The result must satisfy the non-rotation constraint.
func MSegThrough(t0 temporal.Instant, p0, q0 geom.Point, t1 temporal.Instant, p1, q1 geom.Point) (MSeg, error) {
	s, err := MPointThrough(t0, p0, t1, p1)
	if err != nil {
		return MSeg{}, err
	}
	e, err := MPointThrough(t0, q0, t1, q1)
	if err != nil {
		return MSeg{}, err
	}
	return NewMSeg(s, e)
}

// Coplanar reports whether the two endpoint 3D lines are coplanar,
// which holds iff cross(e(0)−s(0), velocity difference) = 0 — the
// segment direction d(t) = d0 + d1·t stays on a fixed direction.
func (g MSeg) Coplanar() bool {
	d0 := geom.Pt(g.E.X0-g.S.X0, g.E.Y0-g.S.Y0)
	d1 := geom.Pt(g.E.X1-g.S.X1, g.E.Y1-g.S.Y1)
	return geom.ApproxZero(d0.Cross(d1))
}

// Eval is the ι function: the (possibly degenerate) segment at time t,
// returned as its two endpoints. Callers that need a canonical Seg value
// must check p ≠ q and order them.
func (g MSeg) Eval(t temporal.Instant) (p, q geom.Point) {
	return g.S.Eval(t), g.E.Eval(t)
}

// EvalSeg evaluates the moving segment at time t as a canonical
// segment; ok is false if the segment is degenerate at t.
func (g MSeg) EvalSeg(t temporal.Instant) (geom.Segment, bool) {
	p, q := g.Eval(t)
	if p == q {
		return geom.Segment{}, false
	}
	s, err := geom.NewSegment(p, q)
	if err != nil {
		return geom.Segment{}, false
	}
	return s, true
}

// DegenerateTimes returns the instants at which the two endpoints
// coincide (the segment collapses to a point): none, one, or always.
func (g MSeg) DegenerateTimes() (ts []float64, always bool) {
	return g.S.meetTimes(g.E)
}

// Cmp orders moving segments lexicographically by their endpoint
// motions, the canonical subarray order of Section 4.2.
func (g MSeg) Cmp(h MSeg) int {
	if c := g.S.Cmp(h.S); c != 0 {
		return c
	}
	return g.E.Cmp(h.E)
}

// String renders the moving segment by its endpoint motions.
func (g MSeg) String() string { return fmt.Sprintf("[%v — %v]", g.S, g.E) }

// msegCriticalTimes collects the instants where the geometric relation
// between two moving segments can change: an endpoint of one crosses the
// supporting line of the other (quadratic events), endpoints of the two
// segments meet (linear events), and either segment degenerates. Between
// consecutive critical times, static predicates such as p-intersect,
// touch or overlap are constant.
func msegCriticalTimes(g, h MSeg) (ts []float64, alwaysCollinear bool) {
	add := func(roots []float64, all bool) bool {
		ts = append(ts, roots...)
		return all
	}
	// Endpoint-on-supporting-line events: cross(bE−bS, p−bS)(t) = 0 is a
	// quadratic in t for each endpoint motion p of the other segment.
	online := func(b MSeg, p MPoint) ([]float64, bool) {
		// d(t) = bE(t) − bS(t); w(t) = p(t) − bS(t); cross(d, w) quadratic.
		dx0, dx1 := b.E.X0-b.S.X0, b.E.X1-b.S.X1
		dy0, dy1 := b.E.Y0-b.S.Y0, b.E.Y1-b.S.Y1
		wx0, wx1 := p.X0-b.S.X0, p.X1-b.S.X1
		wy0, wy1 := p.Y0-b.S.Y0, p.Y1-b.S.Y1
		// cross = dx·wy − dy·wx, with dx(t) = dx0+dx1·t etc.
		a := dx1*wy1 - dy1*wx1
		bb := dx0*wy1 + dx1*wy0 - dy0*wx1 - dy1*wx0
		c := dx0*wy0 - dy0*wx0
		return QuadRoots(a, bb, c)
	}
	all := true
	for _, pair := range []struct {
		b MSeg
		p MPoint
	}{{g, h.S}, {g, h.E}, {h, g.S}, {h, g.E}} {
		roots, a := online(pair.b, pair.p)
		if !add(roots, a) {
			all = false
		}
	}
	// Segment degeneracies.
	for _, b := range []MSeg{g, h} {
		roots, _ := b.DegenerateTimes()
		ts = append(ts, roots...)
	}
	// Endpoint meeting events (linear).
	for _, pq := range [][2]MPoint{{g.S, h.S}, {g.S, h.E}, {g.E, h.S}, {g.E, h.E}} {
		roots, _ := pq[0].meetTimes(pq[1])
		ts = append(ts, roots...)
	}
	return ts, all
}
