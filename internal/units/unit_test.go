package units

import (
	"testing"

	"movingdb/internal/geom"
)

func TestDefinedHelper(t *testing.T) {
	u := NewUReal(iv(0, 10), 0, 0, 1, false)
	if !Defined(u, 5) || Defined(u, 11) {
		t.Error("Defined helper wrong")
	}
	up := StaticUPoint(iv(2, 4), geom.Pt(1, 1))
	if Defined(up, 1) || !Defined(up, 3) {
		t.Error("Defined on upoint wrong")
	}
}
