package units

import (
	"math"
	"slices"

	"movingdb/internal/temporal"
)

// quadEps is the tolerance for treating polynomial coefficients as zero
// when classifying degree.
const quadEps = 1e-12

// QuadRoots returns the real roots of a·t² + b·t + c = 0 in ascending
// order. A (near-)zero leading coefficient degrades gracefully to the
// linear or constant case; an identically zero polynomial reports
// all = true and no isolated roots.
func QuadRoots(a, b, c float64) (roots []float64, all bool) {
	if math.Abs(a) < quadEps {
		if math.Abs(b) < quadEps {
			return nil, math.Abs(c) < quadEps
		}
		return []float64{-c / b}, false
	}
	disc := b*b - 4*a*c
	switch {
	case disc < 0:
		return nil, false
	//molint:ignore float-eq exact zero discriminant takes the closed-form double root; near-zero positives fall through to the stable two-root form that converges to the same value
	case disc == 0:
		return []float64{-b / (2 * a)}, false
	}
	sq := math.Sqrt(disc)
	// Numerically stable form: compute the larger-magnitude root first.
	q := -0.5 * (b + math.Copysign(sq, b))
	r1, r2 := q/a, c/q
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	return []float64{r1, r2}, false
}

// rootsInOpen filters roots to those lying in the open part of the unit
// interval (σ′), which is where the carrier set constraints of the
// spatial unit types apply.
func rootsInOpen(roots []float64, iv temporal.Interval) []float64 {
	var out []float64
	for _, r := range roots {
		if iv.ContainsOpen(temporal.Instant(r)) {
			out = append(out, r)
		}
	}
	return out
}

// criticalSamples returns probe instants that, together, decide a
// predicate that can only change truth value at the given critical
// times: every critical time inside the open interval, plus the
// midpoint of each open sub-interval between consecutive critical
// times. For a degenerate interval the single instant is returned.
func criticalSamples(iv temporal.Interval, critical []float64) []temporal.Instant {
	if iv.IsDegenerate() {
		return []temporal.Instant{iv.Start}
	}
	cuts := []float64{float64(iv.Start), float64(iv.End)}
	for _, c := range critical {
		if iv.ContainsOpen(temporal.Instant(c)) {
			cuts = append(cuts, c)
		}
	}
	slices.Sort(cuts)
	cuts = slices.Compact(cuts)
	var out []temporal.Instant
	for k := 0; k+1 < len(cuts); k++ {
		mid := temporal.Instant((cuts[k] + cuts[k+1]) / 2)
		out = append(out, mid)
		if k > 0 {
			out = append(out, temporal.Instant(cuts[k]))
		}
	}
	return out
}
