package units

import (
	"fmt"
	"slices"

	"movingdb/internal/geom"
	"movingdb/internal/spatial"
	"movingdb/internal/temporal"
)

// ULine is the uline unit type (Section 3.2.6): a set of non-rotating
// moving segments whose evaluation is a valid line value (no collinear
// overlapping segments) at every instant of the open unit interval.
// Moving segments are stored in the lexicographic MSeg order.
type ULine struct {
	Iv temporal.Interval
	Ms []MSeg
}

// NewULine validates the uline carrier set constraints and returns the
// unit. The for-all-instants condition is decided exactly: the relation
// between two non-rotating moving segments can change only at the roots
// of (at most quadratic) polynomials, so checking the finitely many
// critical instants and one sample between each pair of consecutive
// critical instants covers the whole interval.
func NewULine(iv temporal.Interval, ms ...MSeg) (ULine, error) {
	if len(ms) == 0 {
		return ULine{}, fmt.Errorf("%w: uline needs at least one moving segment", ErrInvalidUnit)
	}
	sorted := make([]MSeg, len(ms))
	copy(sorted, ms)
	slices.SortFunc(sorted, MSeg.Cmp)
	u := ULine{Iv: iv, Ms: sorted}
	if err := u.Validate(); err != nil {
		return ULine{}, err
	}
	return u, nil
}

// MustULine is like NewULine but panics on invalid input.
func MustULine(iv temporal.Interval, ms ...MSeg) ULine {
	u, err := NewULine(iv, ms...)
	if err != nil {
		panic(err)
	}
	return u
}

// ULineUnchecked builds the unit without validation, for trusted
// construction paths such as workload generators.
func ULineUnchecked(iv temporal.Interval, ms []MSeg) ULine {
	sorted := make([]MSeg, len(ms))
	copy(sorted, ms)
	slices.SortFunc(sorted, MSeg.Cmp)
	return ULine{Iv: iv, Ms: sorted}
}

// Interval returns the unit interval.
func (u ULine) Interval() temporal.Interval { return u.Iv }

// WithInterval returns the same moving segments on a different
// (sub-)interval.
func (u ULine) WithInterval(iv temporal.Interval) ULine { return ULine{Iv: iv, Ms: u.Ms} }

// EqualFunc reports whether two units carry the same moving segments.
func (u ULine) EqualFunc(v ULine) bool { return slices.Equal(u.Ms, v.Ms) }

// Validate re-checks the carrier set constraints.
func (u ULine) Validate() error {
	for i := 1; i < len(u.Ms); i++ {
		if u.Ms[i].Cmp(u.Ms[i-1]) < 0 {
			return fmt.Errorf("%w: uline segments out of order", ErrInvalidUnit)
		}
	}
	for _, g := range u.Ms {
		if !g.Coplanar() {
			return fmt.Errorf("%w: rotating moving segment %v", ErrInvalidUnit, g)
		}
		ts, always := g.DegenerateTimes()
		if always {
			return fmt.Errorf("%w: permanently degenerate moving segment %v", ErrInvalidUnit, g)
		}
		for _, r := range ts {
			if u.Iv.ContainsOpen(temporal.Instant(r)) {
				return fmt.Errorf("%w: moving segment %v degenerates at t=%g inside the unit", ErrInvalidUnit, g, r)
			}
		}
	}
	// Pairwise: no collinear overlap at any inner instant.
	for i := 0; i < len(u.Ms); i++ {
		for j := i + 1; j < len(u.Ms); j++ {
			if t, bad := overlapInstant(u.Ms[i], u.Ms[j], u.Iv); bad {
				return fmt.Errorf("%w: moving segments %v and %v overlap at t=%v", ErrInvalidUnit, u.Ms[i], u.Ms[j], t)
			}
		}
	}
	return nil
}

// overlapInstant reports an instant in the open unit interval at which
// the two moving segments are collinear and overlapping, if one exists.
func overlapInstant(g, h MSeg, iv temporal.Interval) (temporal.Instant, bool) {
	critical, _ := msegCriticalTimes(g, h)
	for _, t := range criticalSamples(iv, critical) {
		sg, ok1 := g.EvalSeg(t)
		sh, ok2 := h.EvalSeg(t)
		if !ok1 || !ok2 {
			continue
		}
		if geom.Collinear(sg, sh) && geom.Overlap(sg, sh) {
			return t, true
		}
	}
	return 0, false
}

// Eval is the ι function for inner instants: the line value at time t.
// For the closed end points of the unit interval use EvalBoundary, which
// applies the merge-segs degeneracy cleanup.
func (u ULine) Eval(t temporal.Instant) spatial.Line {
	segs := make([]geom.Segment, 0, len(u.Ms))
	for _, g := range u.Ms {
		if s, ok := g.EvalSeg(t); ok {
			segs = append(segs, s)
		}
	}
	return spatial.LineUnchecked(segs)
}

// EvalBoundary evaluates the unit at an end point of its interval,
// applying the ι_s/ι_e cleanup of Section 3.2.6: degenerated segments
// are dropped and overlapping collinear segments merged into maximal
// ones (merge-segs).
func (u ULine) EvalBoundary(t temporal.Instant) spatial.Line {
	segs := make([]geom.Segment, 0, len(u.Ms))
	for _, g := range u.Ms {
		if s, ok := g.EvalSeg(t); ok {
			segs = append(segs, s)
		}
	}
	return spatial.MergeLine(segs...)
}

// EvalAt dispatches to Eval or EvalBoundary according to the position of
// t in the unit interval, implementing the extended semantics definition
// f_u of Section 3.2.6.
func (u ULine) EvalAt(t temporal.Instant) (spatial.Line, bool) {
	if !u.Iv.Contains(t) {
		return spatial.Line{}, false
	}
	if !u.Iv.IsDegenerate() && (t == u.Iv.Start || t == u.Iv.End) {
		return u.EvalBoundary(t), true
	}
	return u.Eval(t), true
}

// Cube returns the 3D bounding cube over the unit interval.
func (u ULine) Cube() geom.Cube {
	r := geom.EmptyRect()
	for _, g := range u.Ms {
		for _, t := range []temporal.Instant{u.Iv.Start, u.Iv.End} {
			p, q := g.Eval(t)
			r = r.ExtendPoint(p).ExtendPoint(q)
		}
	}
	return geom.Cube{Rect: r, MinT: float64(u.Iv.Start), MaxT: float64(u.Iv.End)}
}

// Len returns the number of moving segments.
func (u ULine) Len() int { return len(u.Ms) }

// String renders the unit.
func (u ULine) String() string { return fmt.Sprintf("%v ↦ %d msegs", u.Iv, len(u.Ms)) }
