package units

import (
	"math"
	"testing"
	"testing/quick"

	"movingdb/internal/temporal"
)

func iv(s, e float64) temporal.Interval {
	return temporal.Closed(temporal.Instant(s), temporal.Instant(e))
}

func TestQuadRoots(t *testing.T) {
	r, all := QuadRoots(1, -3, 2) // (t-1)(t-2)
	if all || len(r) != 2 || r[0] != 1 || r[1] != 2 {
		t.Errorf("roots = %v, all = %v", r, all)
	}
	r, all = QuadRoots(0, 2, -4) // linear
	if all || len(r) != 1 || r[0] != 2 {
		t.Errorf("linear roots = %v", r)
	}
	r, all = QuadRoots(0, 0, 5) // no roots
	if all || len(r) != 0 {
		t.Errorf("constant roots = %v", r)
	}
	_, all = QuadRoots(0, 0, 0)
	if !all {
		t.Error("zero polynomial should report all")
	}
	r, _ = QuadRoots(1, 0, 1) // no real roots
	if len(r) != 0 {
		t.Errorf("complex roots = %v", r)
	}
	r, _ = QuadRoots(1, -2, 1) // double root at 1
	if len(r) != 1 || r[0] != 1 {
		t.Errorf("double root = %v", r)
	}
}

func TestQuadRootsProperty(t *testing.T) {
	f := func(a, b, c int8) bool {
		fa, fb, fc := float64(a), float64(b), float64(c)
		roots, all := QuadRoots(fa, fb, fc)
		if all {
			return fa == 0 && fb == 0 && fc == 0
		}
		for _, r := range roots {
			if v := fa*r*r + fb*r + fc; math.Abs(v) > 1e-6*max(1, math.Abs(r*r)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestURealEval(t *testing.T) {
	u := NewUReal(iv(0, 10), 1, -2, 3, false) // t²−2t+3
	if got := u.Eval(0); got != 3 {
		t.Errorf("Eval(0) = %v", got)
	}
	if got := u.Eval(2); got != 3 {
		t.Errorf("Eval(2) = %v", got)
	}
	root := NewUReal(iv(0, 10), 0, 0, 16, true) // √16
	if got := root.Eval(5); got != 4 {
		t.Errorf("root Eval = %v", got)
	}
}

func TestURealMinMax(t *testing.T) {
	u := NewUReal(iv(0, 10), 1, -4, 7, false) // vertex at t=2, value 3
	mn, at := u.Min()
	if mn != 3 || at != 2 {
		t.Errorf("Min = %v at %v", mn, at)
	}
	mx, atx := u.Max()
	if mx != u.Eval(10) || atx != 10 {
		t.Errorf("Max = %v at %v", mx, atx)
	}
	// Vertex outside the interval: extremes at bounds.
	v := u.WithInterval(iv(5, 10))
	mn, at = v.Min()
	if mn != v.Eval(5) || at != 5 {
		t.Errorf("clipped Min = %v at %v", mn, at)
	}
	// Downward parabola.
	w := NewUReal(iv(0, 4), -1, 4, 0, false) // vertex t=2 value 4
	mx, atx = w.Max()
	if mx != 4 || atx != 2 {
		t.Errorf("down Max = %v at %v", mx, atx)
	}
}

func TestURealTimesAt(t *testing.T) {
	u := NewUReal(iv(0, 10), 1, -3, 2, false)
	ts, all := u.TimesAt(0)
	if all || len(ts) != 2 || ts[0] != 1 || ts[1] != 2 {
		t.Errorf("TimesAt(0) = %v", ts)
	}
	// Out-of-interval roots are filtered.
	v := u.WithInterval(iv(1.5, 10))
	ts, _ = v.TimesAt(0)
	if len(ts) != 1 || ts[0] != 2 {
		t.Errorf("clipped TimesAt = %v", ts)
	}
	// Root unit: distance 5 at the roots of quad = 25.
	r := NewUReal(iv(0, 10), 0, 5, 0, true) // √(5t)
	ts, _ = r.TimesAt(5)
	if len(ts) != 1 || ts[0] != 5 {
		t.Errorf("root TimesAt = %v", ts)
	}
	if ts, _ := r.TimesAt(-1); len(ts) != 0 {
		t.Errorf("negative target on root unit = %v", ts)
	}
	// Identically constant.
	c := ConstUReal(iv(0, 1), 7)
	if _, all := c.TimesAt(7); !all {
		t.Error("constant function: all should be true")
	}
}

func TestURealCmpIntervals(t *testing.T) {
	// t²−3t+2 vs 0 on [0,3]: positive on [0,1), zero at 1, negative on
	// (1,2), zero at 2, positive on (2,3].
	u := NewUReal(iv(0, 3), 1, -3, 2, false)
	less, equal, greater := u.CmpIntervals(0)
	sum := func(ivs []temporal.Interval) float64 {
		var d float64
		for _, i := range ivs {
			d += i.Duration()
		}
		return d
	}
	if sum(less) != 1 || sum(greater) != 2 {
		t.Errorf("durations: less=%v greater=%v", sum(less), sum(greater))
	}
	if len(equal) != 2 || !equal[0].IsDegenerate() || !equal[1].IsDegenerate() {
		t.Errorf("equal pieces = %v", equal)
	}
	// Membership spot checks.
	probe := func(ivs []temporal.Interval, t0 temporal.Instant) bool {
		for _, i := range ivs {
			if i.Contains(t0) {
				return true
			}
		}
		return false
	}
	if !probe(greater, 0) || !probe(less, 1.5) || !probe(equal, 1) || !probe(equal, 2) || !probe(greater, 3) {
		t.Error("piece memberships wrong")
	}
}

func TestURealCmpIntervalsProperty(t *testing.T) {
	f := func(a, b, c int8, lo, hi int8, probeNum uint8) bool {
		l, h := float64(lo), float64(hi)
		if l > h {
			l, h = h, l
		}
		u := NewUReal(iv(l, h), float64(a), float64(b), float64(c), false)
		less, equal, greater := u.CmpIntervals(0)
		// probe inside [l, h]
		t0 := temporal.Instant(l + (h-l)*float64(probeNum)/255)
		val := u.Eval(t0)
		in := func(ivs []temporal.Interval) bool {
			for _, i := range ivs {
				if i.Contains(t0) {
					return true
				}
			}
			return false
		}
		inL, inE, inG := in(less), in(equal), in(greater)
		count := 0
		for _, x := range []bool{inL, inE, inG} {
			if x {
				count++
			}
		}
		if count != 1 {
			return false
		}
		switch {
		case val < 0:
			return inL
		case val > 0:
			return inG
		default:
			return inE
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestURealArith(t *testing.T) {
	u := NewUReal(iv(0, 1), 1, 2, 3, false)
	v := NewUReal(iv(0, 1), 2, -1, 1, false)
	sum, ok := u.Add(v, iv(0, 1))
	if !ok || sum.A != 3 || sum.B != 1 || sum.C != 4 {
		t.Errorf("Add = %+v, %v", sum, ok)
	}
	diff, ok := u.Sub(v, iv(0, 1))
	if !ok || diff.A != -1 || diff.B != 3 || diff.C != 2 {
		t.Errorf("Sub = %+v, %v", diff, ok)
	}
	neg, ok := u.Neg()
	if !ok || neg.Eval(0.5)+u.Eval(0.5) != 0 {
		t.Error("Neg wrong")
	}
	r := NewUReal(iv(0, 1), 0, 0, 4, true)
	if _, ok := u.Add(r, iv(0, 1)); ok {
		t.Error("Add with root unit should fail (not closed)")
	}
	scaled, ok := r.Scale(3)
	if !ok || scaled.Eval(0) != 6 {
		t.Errorf("root Scale = %v, %v", scaled.Eval(0), ok)
	}
	if _, ok := r.Scale(-1); ok {
		t.Error("negative scale of root unit should fail")
	}
	p, ok := u.Scale(-2)
	if !ok || p.Eval(1) != -2*u.Eval(1) {
		t.Error("poly Scale wrong")
	}
}

func TestURealEqualFunc(t *testing.T) {
	u := NewUReal(iv(0, 1), 1, 2, 3, false)
	if !u.EqualFunc(u.WithInterval(iv(5, 6))) {
		t.Error("EqualFunc must ignore intervals")
	}
	if u.EqualFunc(NewUReal(iv(0, 1), 1, 2, 3, true)) {
		t.Error("EqualFunc must distinguish root flag")
	}
}

func TestURealArithPointwiseProperty(t *testing.T) {
	f := func(a1, b1, c1, a2, b2, c2 int8, frac uint8) bool {
		u := NewUReal(iv(0, 10), float64(a1), float64(b1), float64(c1), false)
		v := NewUReal(iv(0, 10), float64(a2), float64(b2), float64(c2), false)
		t0 := temporal.Instant(10 * float64(frac) / 255)
		sum, ok := u.Add(v, iv(0, 10))
		if !ok || math.Abs(sum.Eval(t0)-(u.Eval(t0)+v.Eval(t0))) > 1e-6 {
			return false
		}
		diff, ok := u.Sub(v, iv(0, 10))
		if !ok || math.Abs(diff.Eval(t0)-(u.Eval(t0)-v.Eval(t0))) > 1e-6 {
			return false
		}
		neg, ok := u.Neg()
		if !ok || neg.Eval(t0) != -u.Eval(t0) {
			return false
		}
		sc, ok := u.Scale(2.5)
		return ok && math.Abs(sc.Eval(t0)-2.5*u.Eval(t0)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestURealValueRangeProperty(t *testing.T) {
	// Every sampled value lies within ValueRange; the bounds are
	// attained when closed.
	f := func(a, b, c int8, frac uint8) bool {
		u := NewUReal(iv(0, 10), float64(a), float64(b), float64(c), false)
		lo, hi, _, _ := u.ValueRange()
		t0 := temporal.Instant(10 * float64(frac) / 255)
		v := u.Eval(t0)
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
