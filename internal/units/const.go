package units

import (
	"fmt"

	"movingdb/internal/temporal"
)

// Const is the const(α) type constructor of Section 3.2.5: a unit whose
// function is the constant V over its interval. It represents the
// stepwise-constant slices of moving int, string and bool values (and
// can be applied to any comparable type).
type Const[T comparable] struct {
	Iv temporal.Interval
	V  T
}

// NewConst returns a constant unit over iv with value v.
func NewConst[T comparable](iv temporal.Interval, v T) Const[T] {
	return Const[T]{Iv: iv, V: v}
}

// Interval returns the unit interval.
func (u Const[T]) Interval() temporal.Interval { return u.Iv }

// WithInterval returns the same constant on a different interval.
func (u Const[T]) WithInterval(iv temporal.Interval) Const[T] { return Const[T]{Iv: iv, V: u.V} }

// EqualFunc reports whether two units carry the same constant.
func (u Const[T]) EqualFunc(v Const[T]) bool { return u.V == v.V }

// Eval is the trivial ι function: ι(v, t) = v.
func (u Const[T]) Eval(temporal.Instant) T { return u.V }

// String renders the unit as "interval ↦ value".
func (u Const[T]) String() string { return fmt.Sprintf("%v ↦ %v", u.Iv, u.V) }

// The constant unit instantiations used by the moving base types.
type (
	// UBool is const(bool).
	UBool = Const[bool]
	// UInt is const(int).
	UInt = Const[int64]
	// UString is const(string).
	UString = Const[string]
)
