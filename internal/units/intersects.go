package units

import (
	"movingdb/internal/temporal"
)

// URegionIntersects implements the unit-pair kernel of the lifted
// intersects predicate on two moving regions: boolean units describing
// when the two regions share a point, over the intersection of the unit
// intervals. Like the validity checks, the decision is exact for linear
// motion: the intersection status of two polygonal regions with linearly
// moving vertices can only change at instants where some pair of
// boundary segments changes its relation — the critical times of the
// moving segment pairs — so evaluating the static predicate at the
// criticals and between them covers the interval.
func URegionIntersects(a, b URegion) []UBool {
	iv, ok := a.Iv.Intersect(b.Iv)
	if !ok {
		return nil
	}
	if !a.Cube().Intersects(b.Cube()) {
		return []UBool{{Iv: iv, V: false}}
	}
	var critical []float64
	for _, g := range a.AllMSegs() {
		for _, h := range b.AllMSegs() {
			ts, _ := msegCriticalTimes(g, h)
			critical = append(critical, ts...)
		}
	}
	eval := func(t temporal.Instant) bool {
		ra, ok1 := a.EvalAt(t)
		rb, ok2 := b.EvalAt(t)
		if !ok1 || !ok2 {
			return false
		}
		return ra.IntersectsRegion(rb)
	}
	return boolPieces(iv, critical, eval)
}

// boolPieces assembles the boolean units of a predicate over iv that can
// only change truth value at the given critical times: the interval is
// split at the in-interval criticals, each open piece is decided at its
// midpoint and each critical instant individually, and equal adjacent
// pieces are merged.
func boolPieces(iv temporal.Interval, critical []float64, eval func(temporal.Instant) bool) []UBool {
	if iv.IsDegenerate() {
		return []UBool{{Iv: iv, V: eval(iv.Start)}}
	}
	cuts := []temporal.Instant{iv.Start}
	inOpen := make([]float64, 0, len(critical))
	for _, c := range critical {
		if iv.ContainsOpen(temporal.Instant(c)) {
			inOpen = append(inOpen, c)
		}
	}
	sortF(inOpen)
	for i, c := range inOpen {
		//molint:ignore float-eq dedup of bit-identical critical instants after sorting; instants one ulp apart legitimately cut separate refinement pieces
		if i == 0 || c != inOpen[i-1] {
			cuts = append(cuts, temporal.Instant(c))
		}
	}
	cuts = append(cuts, iv.End)

	var out []UBool
	appendPiece := func(piv temporal.Interval, v bool) {
		if n := len(out); n > 0 && out[n-1].V == v && out[n-1].Iv.Adjacent(piv) {
			if merged, ok := out[n-1].Iv.Union(piv); ok {
				out[n-1].Iv = merged
				return
			}
		}
		out = append(out, UBool{Iv: piv, V: v})
	}
	for k := 0; k+1 < len(cuts); k++ {
		lo, hi := cuts[k], cuts[k+1]
		if k > 0 {
			appendPiece(temporal.AtInstant(lo), eval(lo))
		}
		mid := temporal.Instant((float64(lo) + float64(hi)) / 2)
		piece := temporal.Interval{
			Start: lo, End: hi,
			LC: k == 0 && iv.LC,
			RC: k+2 == len(cuts) && iv.RC,
		}
		appendPiece(piece, eval(mid))
	}
	return out
}

func sortF(fs []float64) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j] < fs[j-1]; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}
