package units

import (
	"slices"

	"movingdb/internal/geom"
	"movingdb/internal/temporal"
)

// UPointInsideURegion implements the unit-pair kernel
// upoint_uregion_inside of Section 5.2: given a upoint unit and a
// uregion unit it returns boolean units describing when the moving point
// is inside the moving region, over the intersection of the two unit
// intervals. The moving point is a line in 3D space that stabs the
// moving segments (trapeziums in 3D) of the region unit; with each stab
// the point alternates between inside and outside.
//
// Crossing instants are found as roots of the quadratic
// cross(e(t)−s(t), p(t)−s(t)) = 0 restricted to the segment's parameter
// range; the initial state is decided with the plumbline test
// (Section 5.2). Tangential grazings — the point touching the boundary
// without crossing (a double root) — do not flip the state. Following
// the paper, true intervals are emitted closed and false intervals open,
// because the boundary belongs to the region.
//
// The cost is O(s) for the stab candidates plus O(k log k) for sorting
// the k crossings, matching the complexity stated in the paper.
func UPointInsideURegion(up UPoint, ur URegion) []UBool {
	iv, ok := up.Iv.Intersect(ur.Iv)
	if !ok {
		return nil
	}
	// Bounding cube rejection (constant time with stored cubes).
	if !up.Cube().Intersects(ur.Cube()) {
		return []UBool{{Iv: iv, V: false}}
	}

	type crossing struct {
		t     float64
		touch bool // tangential: state does not flip
	}
	var crossings []crossing
	for _, g := range ur.AllMSegs() {
		for _, c := range stabTimes(up.M, g, iv) {
			crossings = append(crossings, crossing{t: c.t, touch: c.touch})
		}
	}
	slices.SortFunc(crossings, func(a, b crossing) int {
		switch {
		case a.t < b.t:
			return -1
		case a.t > b.t:
			return 1
		}
		return 0
	})
	// Merge coincident crossing instants: an even number of genuine
	// crossings at the same instant (e.g. passing through a vertex
	// shared by two segments) cancels to a touch, an odd number to a
	// single crossing.
	merged := crossings[:0]
	for i := 0; i < len(crossings); {
		j := i
		flips := 0
		//molint:ignore float-eq crossings at a shared vertex are computed from the same endpoint and coincide exactly; tolerant merging would cancel distinct near-crossings
		for j < len(crossings) && crossings[j].t == crossings[i].t {
			if !crossings[j].touch {
				flips++
			}
			j++
		}
		merged = append(merged, crossing{t: crossings[i].t, touch: flips%2 == 0})
		i = j
	}
	crossings = merged

	// Initial state: sample strictly before the first crossing (or the
	// interval midpoint when there are none) and apply the plumbline.
	sampleAt := func(lo, hi float64) temporal.Instant { return temporal.Instant((lo + hi) / 2) }
	first := float64(iv.End)
	if len(crossings) > 0 {
		first = crossings[0].t
	}
	var state bool
	if iv.IsDegenerate() {
		state = pointInRegionAt(up.M, ur, iv.Start)
	} else if first > float64(iv.Start) {
		state = pointInRegionAt(up.M, ur, sampleAt(float64(iv.Start), first))
	} else {
		// A crossing exactly at the interval start: state right after it.
		next := float64(iv.End)
		if len(crossings) > 1 {
			next = crossings[1].t
		}
		state = pointInRegionAt(up.M, ur, sampleAt(first, next))
		// Drop that crossing; it does not partition the interior.
		crossings = crossings[1:]
	}

	// Assemble alternating boolean units. True pieces are closed, false
	// pieces open; touches inside a false piece contribute degenerate
	// true instants.
	var out []UBool
	cur := iv.Start
	curLC := iv.LC
	emit := func(end temporal.Instant, endRC bool, v bool) {
		lc, rc := curLC, endRC
		if v {
			// Closure toward crossing instants: the point is on the
			// boundary there, which is inside the region.
			if cur != iv.Start {
				lc = true
			}
			if end != iv.End {
				rc = true
			}
		} else {
			if cur != iv.Start {
				lc = false
			}
			if end != iv.End {
				rc = false
			}
		}
		if cur == end && !(lc && rc) {
			return
		}
		if cur > end {
			return
		}
		out = append(out, UBool{Iv: temporal.Interval{Start: cur, End: end, LC: lc, RC: rc}, V: v})
	}
	for _, c := range crossings {
		t := temporal.Instant(c.t)
		if t <= cur || !iv.Contains(t) {
			// Out-of-interval or duplicate; touches at the boundary of
			// the overall interval need no piece of their own.
			continue
		}
		if c.touch {
			if !state {
				// Outside before and after, but on the boundary at t.
				emit(t, false, false)
				cur, curLC = t, true
				emit(t, true, true)
				cur, curLC = t, false
			}
			continue
		}
		emit(t, false, state)
		cur, curLC = t, false
		state = !state
	}
	emit(iv.End, iv.RC, state)
	return out
}

type stab struct {
	t     float64
	touch bool
}

// stabTimes returns the instants in iv at which the moving point p
// crosses (or touches) the moving segment g.
func stabTimes(p MPoint, g MSeg, iv temporal.Interval) []stab {
	// f(t) = cross(e(t)−s(t), p(t)−s(t)), a quadratic.
	dx0, dx1 := g.E.X0-g.S.X0, g.E.X1-g.S.X1
	dy0, dy1 := g.E.Y0-g.S.Y0, g.E.Y1-g.S.Y1
	wx0, wx1 := p.X0-g.S.X0, p.X1-g.S.X1
	wy0, wy1 := p.Y0-g.S.Y0, p.Y1-g.S.Y1
	a := dx1*wy1 - dy1*wx1
	b := dx0*wy1 + dx1*wy0 - dy0*wx1 - dy1*wx0
	c := dx0*wy0 - dy0*wx0
	roots, all := QuadRoots(a, b, c)
	if all {
		// The point moves along the segment's supporting line; it is on
		// the segment for a whole sub-interval. This non-generic case is
		// handled conservatively as no crossings (state sampling decides
		// membership), acceptable because the boundary belongs to the
		// region on either side.
		return nil
	}
	var out []stab
	//molint:ignore float-eq degree classification: QuadRoots already folded near-zero leading coefficients, so a surviving nonzero is structural
	touch := len(roots) == 1 && a != 0 // double root: tangential
	for _, r := range roots {
		t := temporal.Instant(r)
		if !iv.Contains(t) {
			continue
		}
		// The root is a supporting-line crossing; it stabs the segment
		// only if the point lies within the segment bounds at time t.
		sp, ok := g.EvalSeg(t)
		if !ok {
			continue // segment degenerate at t
		}
		if !sp.Contains(p.Eval(t)) {
			continue
		}
		out = append(out, stab{t: r, touch: touch})
	}
	return out
}

// pointInRegionAt applies the plumbline test to decide whether the
// moving point is inside the moving region at instant t.
func pointInRegionAt(p MPoint, ur URegion, t temporal.Instant) bool {
	segs := make([]geom.Segment, 0, ur.NumMSegs())
	for _, g := range ur.AllMSegs() {
		if s, ok := g.EvalSeg(t); ok {
			segs = append(segs, s)
		}
	}
	return geom.Plumbline(p.Eval(t), segs)
}
