package units

import (
	"math"
	"testing"

	"movingdb/internal/geom"
	"movingdb/internal/temporal"
)

// translatingMSeg returns an MSeg translating segment (p,q) by velocity
// (vx, vy).
func translatingMSeg(p, q geom.Point, vx, vy float64) MSeg {
	return MustMSeg(
		MPoint{X0: p.X, X1: vx, Y0: p.Y, Y1: vy},
		MPoint{X0: q.X, X1: vx, Y0: q.Y, Y1: vy},
	)
}

func TestULineValid(t *testing.T) {
	// Two parallel segments translating right: always a valid line.
	g := translatingMSeg(geom.Pt(0, 0), geom.Pt(1, 0), 1, 0)
	h := translatingMSeg(geom.Pt(0, 2), geom.Pt(1, 2), 1, 0)
	u, err := NewULine(iv(0, 10), g, h)
	if err != nil {
		t.Fatal(err)
	}
	l := u.Eval(3)
	if l.NumSegments() != 2 {
		t.Errorf("Eval segments = %d", l.NumSegments())
	}
	if !l.ContainsPoint(geom.Pt(3.5, 0)) {
		t.Error("evaluated line misses translated segment")
	}
	if u.Len() != 2 {
		t.Errorf("Len = %d", u.Len())
	}
}

func TestULineRejectsOverlap(t *testing.T) {
	// Two collinear segments moving toward each other along their common
	// line: they overlap in the middle of the unit.
	g := translatingMSeg(geom.Pt(0, 0), geom.Pt(2, 0), 1, 0)  // moves right
	h := translatingMSeg(geom.Pt(6, 0), geom.Pt(8, 0), -1, 0) // moves left
	// At t=3: g = (3,0)-(5,0), h = (3,0)-(5,0): full overlap.
	if _, err := NewULine(iv(0, 10), g, h); err == nil {
		t.Error("overlapping moving segments accepted")
	}
	// Restricted to [0,2] they stay apart (touch at t=2 endpoint only).
	if _, err := NewULine(iv(0, 2), g, h); err != nil {
		t.Errorf("non-overlapping restriction rejected: %v", err)
	}
}

func TestULineRejectsInteriorDegeneracy(t *testing.T) {
	// Segment shrinking to a point at t=2.
	g, err := MSegThrough(0, geom.Pt(0, 0), geom.Pt(4, 0), 2, geom.Pt(2, 0), geom.Pt(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewULine(iv(0, 4), g); err == nil {
		t.Error("interior degeneracy accepted")
	}
	// Degeneracy exactly at the unit end is fine.
	if _, err := NewULine(iv(0, 2), g); err != nil {
		t.Errorf("end point degeneracy rejected: %v", err)
	}
}

func TestULineEvalBoundary(t *testing.T) {
	// Two collinear moving segments that first meet exactly at the end
	// instant — merge-segs must merge them into one maximal segment.
	g := translatingMSeg(geom.Pt(0, 0), geom.Pt(2, 0), 1, 0)
	h := translatingMSeg(geom.Pt(6, 0), geom.Pt(8, 0), -1, 0)
	// g spans [t, 2+t], h spans [6−t, 8−t]: disjoint for t < 2, meeting
	// at x=4 exactly at t=2.
	u, err := NewULine(iv(0, 2), g, h)
	if err != nil {
		t.Fatal(err)
	}
	l := u.EvalBoundary(2)
	if l.NumSegments() != 1 {
		t.Fatalf("boundary eval = %v", l)
	}
	if l.Segments()[0] != geom.Seg(2, 0, 6, 0) {
		t.Errorf("merged = %v", l.Segments()[0])
	}
	// Inner instants keep both segments.
	if got := u.Eval(1).NumSegments(); got != 2 {
		t.Errorf("inner eval segments = %d", got)
	}
	// EvalAt dispatch.
	if got, ok := u.EvalAt(2); !ok || got.NumSegments() != 1 {
		t.Error("EvalAt(2) did not clean up")
	}
	if got, ok := u.EvalAt(1); !ok || got.NumSegments() != 2 {
		t.Error("EvalAt(1) wrong")
	}
	if _, ok := u.EvalAt(3); ok {
		t.Error("EvalAt outside interval")
	}
}

func TestULineBoundaryDegenerateDrop(t *testing.T) {
	g, _ := MSegThrough(0, geom.Pt(0, 0), geom.Pt(4, 0), 2, geom.Pt(2, 0), geom.Pt(2, 0))
	h := translatingMSeg(geom.Pt(0, 5), geom.Pt(1, 5), 0, 0)
	u := MustULine(iv(0, 2), g, h)
	l := u.EvalBoundary(2)
	if l.NumSegments() != 1 {
		t.Fatalf("degenerated segment not dropped: %v", l)
	}
	if !l.ContainsPoint(geom.Pt(0.5, 5)) {
		t.Error("surviving segment wrong")
	}
}

func TestULineCube(t *testing.T) {
	g := translatingMSeg(geom.Pt(0, 0), geom.Pt(1, 0), 1, 1)
	u := MustULine(iv(0, 10), g)
	c := u.Cube()
	if c.Rect.MaxX != 11 || c.Rect.MaxY != 10 || c.MaxT != 10 {
		t.Errorf("Cube = %+v", c)
	}
}

func TestOverlapInstantSamplesExactly(t *testing.T) {
	// Segments that only overlap in a sub-interval strictly inside the
	// unit, away from any naive sample points like the midpoint of the
	// whole interval: critical-time analysis must still find it.
	g := translatingMSeg(geom.Pt(0, 0), geom.Pt(1, 0), 1, 0)
	h := translatingMSeg(geom.Pt(100, 0), geom.Pt(101, 0), -10, 0)
	// g spans [t, 1+t]; h spans [100−10t, 101−10t]. Overlap when
	// 100−10t < 1+t and t < 101−10t: t ∈ (9, 9.1818...) approximately.
	u := ULine{Iv: iv(0, 10), Ms: []MSeg{g, h}}
	if err := u.Validate(); err == nil {
		t.Error("narrow overlap window missed by validation")
	}
	if math.Abs(float64(temporal.Instant(9))-9) > 0 {
		t.Fatal("sanity")
	}
}
