package units

import (
	"math"
	"testing"
	"testing/quick"

	"movingdb/internal/geom"
	"movingdb/internal/temporal"
)

func TestMPointThrough(t *testing.T) {
	m, err := MPointThrough(0, geom.Pt(0, 0), 10, geom.Pt(10, 20))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Eval(0); got != geom.Pt(0, 0) {
		t.Errorf("Eval(0) = %v", got)
	}
	if got := m.Eval(10); got != geom.Pt(10, 20) {
		t.Errorf("Eval(10) = %v", got)
	}
	if got := m.Eval(5); got != geom.Pt(5, 10) {
		t.Errorf("Eval(5) = %v", got)
	}
	if m.Velocity() != geom.Pt(1, 2) {
		t.Errorf("Velocity = %v", m.Velocity())
	}
	if math.Abs(m.Speed()-math.Sqrt(5)) > 1e-12 {
		t.Errorf("Speed = %v", m.Speed())
	}
	if _, err := MPointThrough(3, geom.Pt(0, 0), 3, geom.Pt(1, 1)); err == nil {
		t.Error("equal instants accepted")
	}
}

func TestMPointThroughProperty(t *testing.T) {
	f := func(px, py, qx, qy int8, t0, t1 uint8) bool {
		if t0 == t1 {
			return true
		}
		p, q := geom.Pt(float64(px), float64(py)), geom.Pt(float64(qx), float64(qy))
		m, err := MPointThrough(temporal.Instant(t0), p, temporal.Instant(t1), q)
		if err != nil {
			return false
		}
		return geom.ApproxEqPoint(m.Eval(temporal.Instant(t0)), p) &&
			geom.ApproxEqPoint(m.Eval(temporal.Instant(t1)), q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMPointMeetTimes(t *testing.T) {
	a, _ := MPointThrough(0, geom.Pt(0, 0), 10, geom.Pt(10, 0))
	b, _ := MPointThrough(0, geom.Pt(10, 0), 10, geom.Pt(0, 0))
	ts, always := a.meetTimes(b)
	if always || len(ts) != 1 || ts[0] != 5 {
		t.Errorf("meetTimes = %v, %v", ts, always)
	}
	// Parallel, never meeting.
	c, _ := MPointThrough(0, geom.Pt(0, 1), 10, geom.Pt(10, 1))
	ts, always = a.meetTimes(c)
	if always || len(ts) != 0 {
		t.Errorf("parallel meetTimes = %v", ts)
	}
	// Identical motions.
	_, always = a.meetTimes(a)
	if !always {
		t.Error("identical motions: always expected")
	}
	// Same x-path but different y: meet only where both coordinates agree.
	d, _ := MPointThrough(0, geom.Pt(0, 5), 10, geom.Pt(10, 5))
	ts, always = a.meetTimes(d)
	if always || len(ts) != 0 {
		t.Errorf("never-meeting = %v", ts)
	}
}

func TestUPointBasics(t *testing.T) {
	u, err := UPointBetween(iv(0, 10), geom.Pt(0, 0), geom.Pt(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if u.StartPoint() != geom.Pt(0, 0) || u.EndPoint() != geom.Pt(10, 10) {
		t.Error("endpoints wrong")
	}
	if got := u.Eval(5); got != geom.Pt(5, 5) {
		t.Errorf("Eval(5) = %v", got)
	}
	s, ok := u.TrajectorySegment()
	if !ok || s != geom.Seg(0, 0, 10, 10) {
		t.Errorf("trajectory = %v, %v", s, ok)
	}
	st := StaticUPoint(iv(0, 1), geom.Pt(3, 3))
	if _, ok := st.TrajectorySegment(); ok {
		t.Error("static point has no trajectory segment")
	}
	cube := u.Cube()
	if cube.MinT != 0 || cube.MaxT != 10 || cube.Rect.MaxX != 10 {
		t.Errorf("Cube = %+v", cube)
	}
}

func TestUPointDistance(t *testing.T) {
	// Two points approaching head-on at constant speed: distance is
	// |20−4t| — as a √quadratic.
	a, _ := UPointBetween(iv(0, 10), geom.Pt(0, 0), geom.Pt(20, 0))
	b, _ := UPointBetween(iv(0, 10), geom.Pt(20, 0), geom.Pt(0, 0))
	d := a.DistanceTo(b, iv(0, 10))
	if !d.Root {
		t.Fatal("distance must be a root unit")
	}
	for _, c := range []struct {
		t    temporal.Instant
		want float64
	}{{0, 20}, {5, 0}, {10, 20}, {2.5, 10}} {
		if got := d.Eval(c.t); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("distance(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	mn, at := d.Min()
	if math.Abs(mn) > 1e-9 || at != 5 {
		t.Errorf("min distance = %v at %v", mn, at)
	}
	// Distance to a fixed point.
	dp := a.DistanceToPoint(geom.Pt(0, 30), iv(0, 10))
	if got := dp.Eval(0); got != 30 {
		t.Errorf("distance to point at 0 = %v", got)
	}
	if got := dp.Eval(10); math.Abs(got-math.Hypot(20, 30)) > 1e-9 {
		t.Errorf("distance to point at 10 = %v", got)
	}
}

func TestUPointDistanceProperty(t *testing.T) {
	// The ureal distance agrees with direct pointwise computation.
	f := func(ax, ay, bx, by, cx, cy, dx, dy int8, frac uint8) bool {
		a, err1 := UPointBetween(iv(0, 10), geom.Pt(float64(ax), float64(ay)), geom.Pt(float64(bx), float64(by)))
		b, err2 := UPointBetween(iv(0, 10), geom.Pt(float64(cx), float64(cy)), geom.Pt(float64(dx), float64(dy)))
		if err1 != nil || err2 != nil {
			return true
		}
		d := a.DistanceTo(b, iv(0, 10))
		t0 := temporal.Instant(10 * float64(frac) / 255)
		want := a.Eval(t0).Dist(b.Eval(t0))
		return math.Abs(d.Eval(t0)-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUPointPasses(t *testing.T) {
	u, _ := UPointBetween(iv(0, 10), geom.Pt(0, 0), geom.Pt(10, 10))
	at, ok := u.Passes(geom.Pt(3, 3))
	if !ok || at != 3 {
		t.Errorf("Passes = %v, %v", at, ok)
	}
	if _, ok := u.Passes(geom.Pt(3, 4)); ok {
		t.Error("off-path point passed")
	}
	if _, ok := u.Passes(geom.Pt(11, 11)); ok {
		t.Error("beyond interval point passed")
	}
	st := StaticUPoint(iv(0, 1), geom.Pt(2, 2))
	if at, ok := st.Passes(geom.Pt(2, 2)); !ok || at != 0 {
		t.Error("static passes wrong")
	}
}

func TestMSegValidation(t *testing.T) {
	s, _ := MPointThrough(0, geom.Pt(0, 0), 1, geom.Pt(1, 0))
	e, _ := MPointThrough(0, geom.Pt(2, 0), 1, geom.Pt(3, 0))
	if _, err := NewMSeg(s, e); err != nil {
		t.Errorf("translating segment rejected: %v", err)
	}
	// Rotating: endpoint velocities not compatible with fixed direction.
	e2, _ := MPointThrough(0, geom.Pt(2, 0), 1, geom.Pt(2, 5))
	if _, err := NewMSeg(s, e2); err == nil {
		t.Error("rotating segment accepted")
	}
	if _, err := NewMSeg(s, s); err == nil {
		t.Error("degenerate mseg accepted")
	}
	// Scaling along the segment direction is fine (coplanar).
	e3, _ := MPointThrough(0, geom.Pt(2, 0), 1, geom.Pt(5, 0))
	if _, err := NewMSeg(s, e3); err != nil {
		t.Errorf("scaling segment rejected: %v", err)
	}
}

func TestMSegEvalAndDegenerate(t *testing.T) {
	// Endpoints converge at t=2.
	g, err := MSegThrough(0, geom.Pt(0, 0), geom.Pt(4, 0), 2, geom.Pt(2, 0), geom.Pt(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := g.EvalSeg(0); !ok || s != geom.Seg(0, 0, 4, 0) {
		t.Errorf("EvalSeg(0) = %v, %v", s, ok)
	}
	if s, ok := g.EvalSeg(1); !ok || s != geom.Seg(1, 0, 3, 0) {
		t.Errorf("EvalSeg(1) = %v, %v", s, ok)
	}
	if _, ok := g.EvalSeg(2); ok {
		t.Error("degenerate instant not detected by EvalSeg")
	}
	ts, always := g.DegenerateTimes()
	if always || len(ts) != 1 || ts[0] != 2 {
		t.Errorf("DegenerateTimes = %v, %v", ts, always)
	}
}

func TestUPointsValidation(t *testing.T) {
	a, _ := MPointThrough(0, geom.Pt(0, 0), 10, geom.Pt(10, 0))
	b, _ := MPointThrough(0, geom.Pt(10, 0), 10, geom.Pt(0, 0)) // meets a at t=5
	c, _ := MPointThrough(0, geom.Pt(0, 5), 10, geom.Pt(10, 5)) // parallel to a

	if _, err := NewUPoints(iv(0, 10), a, c); err != nil {
		t.Errorf("valid upoints rejected: %v", err)
	}
	if _, err := NewUPoints(iv(0, 10), a, b); err == nil {
		t.Error("crossing motions accepted")
	}
	// The meet at t=5 is allowed if it is an interval end point.
	if _, err := NewUPoints(iv(0, 5), a, b); err != nil {
		t.Errorf("meet at closed end rejected: %v", err)
	}
	if _, err := NewUPoints(iv(5, 10), a, b); err != nil {
		t.Errorf("meet at start rejected: %v", err)
	}
	// Degenerate interval: points must differ at the single instant.
	if _, err := NewUPoints(temporal.AtInstant(5), a, b); err == nil {
		t.Error("coinciding points at degenerate instant accepted")
	}
	if _, err := NewUPoints(temporal.AtInstant(3), a, b); err != nil {
		t.Errorf("distinct points at degenerate instant rejected: %v", err)
	}
	if _, err := NewUPoints(iv(0, 1)); err == nil {
		t.Error("empty upoints accepted")
	}
	if _, err := NewUPoints(iv(0, 10), a, a); err == nil {
		t.Error("identical motions accepted")
	}
}

func TestUPointsEval(t *testing.T) {
	a, _ := MPointThrough(0, geom.Pt(0, 0), 10, geom.Pt(10, 0))
	c, _ := MPointThrough(0, geom.Pt(0, 5), 10, geom.Pt(10, 5))
	u := MustUPoints(iv(0, 10), a, c)
	ps := u.Eval(4)
	if ps.Len() != 2 || !ps.Contains(geom.Pt(4, 0)) || !ps.Contains(geom.Pt(4, 5)) {
		t.Errorf("Eval = %v", ps)
	}
	if u.Len() != 2 {
		t.Errorf("Len = %d", u.Len())
	}
	cube := u.Cube()
	if cube.Rect.MaxY != 5 || cube.MaxT != 10 {
		t.Errorf("Cube = %+v", cube)
	}
}
