//go:build debugcheck

package mapping

import "movingdb/internal/units"

// debugValidate re-runs the full Section 3.2.4 carrier-set check
// (ordered, pairwise disjoint, minimal) on mappings assembled through
// the trusted, validation-free construction paths. A failure here means
// an operation produced a malformed sliced representation — a bug in
// the producer, not in the input — so it panics instead of returning an
// error. Compiled in only under the debugcheck build tag.
func debugValidate[U units.Unit[U]](site string, m Mapping[U]) {
	if err := m.Validate(); err != nil {
		panic("debugcheck: mapping." + site + ": " + err.Error())
	}
}
