//go:build !debugcheck

package mapping

import "movingdb/internal/units"

// debugValidate is a no-op unless built with -tags=debugcheck; see
// debugcheck.go.
func debugValidate[U units.Unit[U]](string, Mapping[U]) {}
