//go:build debugcheck

package mapping

import (
	"testing"

	"movingdb/internal/units"
)

// mustPanic runs f and fails the test unless it panics — the debugcheck
// assertions are worthless if they compile in but never fire.
func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic under debugcheck", what)
		}
	}()
	f()
}

func TestDebugValidateFires(t *testing.T) {
	mustPanic(t, "FromOrdered with overlapping units", func() {
		FromOrdered([]units.UBool{ub(iv(0, 5), true), ub(iv(3, 8), false)})
	})
	mustPanic(t, "FromOrdered with out-of-order units", func() {
		FromOrdered([]units.UBool{ub(rho(5, 7), true), ub(rho(0, 2), false)})
	})
	mustPanic(t, "FromOrdered with adjacent equal units", func() {
		FromOrdered([]units.UBool{ub(rho(0, 2), true), ub(rho(2, 4), true)})
	})
}

func TestDebugValidatePassesValidMapping(t *testing.T) {
	m := FromOrdered([]units.UBool{ub(rho(0, 2), true), ub(rho(2, 4), false)})
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}
