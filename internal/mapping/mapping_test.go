package mapping

import (
	"testing"
	"testing/quick"

	"movingdb/internal/temporal"
	"movingdb/internal/units"
)

func iv(s, e float64) temporal.Interval {
	return temporal.Closed(temporal.Instant(s), temporal.Instant(e))
}

func rho(s, e float64) temporal.Interval { // right-half-open [s, e)
	return temporal.RightHalfOpen(temporal.Instant(s), temporal.Instant(e))
}

func ub(i temporal.Interval, v bool) units.UBool { return units.UBool{Iv: i, V: v} }

func TestNewSortsAndValidates(t *testing.T) {
	m, err := New(
		ub(rho(5, 7), false),
		ub(rho(0, 2), true),
	)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	if m.Units()[0].Iv.Start != 0 {
		t.Error("units not sorted")
	}
	// Overlapping units rejected.
	if _, err := New(ub(iv(0, 5), true), ub(iv(3, 8), false)); err == nil {
		t.Error("overlapping units accepted")
	}
	// Adjacent units with equal value rejected (not minimal).
	if _, err := New(ub(rho(0, 2), true), ub(rho(2, 4), true)); err == nil {
		t.Error("adjacent equal units accepted")
	}
	// Adjacent with distinct values fine.
	if _, err := New(ub(rho(0, 2), true), ub(rho(2, 4), false)); err != nil {
		t.Errorf("adjacent distinct units rejected: %v", err)
	}
	// Disjoint non-adjacent equal units fine.
	if _, err := New(ub(iv(0, 1), true), ub(iv(3, 4), true)); err != nil {
		t.Errorf("gap-separated equal units rejected: %v", err)
	}
}

func TestFindUnit(t *testing.T) {
	m := Must(
		ub(rho(0, 2), true),
		ub(rho(3, 5), false),
		ub(iv(7, 9), true),
	)
	cases := []struct {
		t   float64
		idx int
		ok  bool
	}{{-1, 0, false}, {0, 0, true}, {1.5, 0, true}, {2, 0, false}, {3, 1, true}, {5, 0, false}, {8, 2, true}, {9, 2, true}, {10, 0, false}}
	for _, c := range cases {
		idx, ok := m.FindUnit(temporal.Instant(c.t))
		if ok != c.ok || (ok && idx != c.idx) {
			t.Errorf("FindUnit(%v) = %d, %v", c.t, idx, ok)
		}
	}
	u, ok := m.UnitAt(4)
	if !ok || u.V {
		t.Error("UnitAt(4) wrong")
	}
	if !m.Present(8) || m.Present(6) {
		t.Error("Present wrong")
	}
}

func TestDefTimeInitialFinal(t *testing.T) {
	m := Must(ub(rho(0, 2), true), ub(rho(2, 4), false), ub(iv(7, 9), true))
	dt := m.DefTime()
	// [0,2) and [2,4) merge in the period set.
	if dt.Len() != 2 {
		t.Fatalf("DefTime = %v", dt)
	}
	if !dt.Contains(3) || dt.Contains(5) {
		t.Error("DefTime membership wrong")
	}
	first, ok := m.InitialUnit()
	if !ok || first.Iv.Start != 0 {
		t.Error("InitialUnit wrong")
	}
	last, ok := m.FinalUnit()
	if !ok || last.Iv.End != 9 {
		t.Error("FinalUnit wrong")
	}
	var empty Mapping[units.UBool]
	if _, ok := empty.InitialUnit(); ok {
		t.Error("empty InitialUnit")
	}
	if !empty.IsEmpty() {
		t.Error("zero mapping not empty")
	}
}

func TestAtPeriods(t *testing.T) {
	m := Must(ub(rho(0, 10), true))
	p := temporal.MustPeriods(iv(2, 4), iv(6, 8))
	clipped := m.AtPeriods(p)
	if clipped.Len() != 2 {
		t.Fatalf("clipped = %v", clipped)
	}
	if clipped.Units()[0].Iv != iv(2, 4) || clipped.Units()[1].Iv != iv(6, 8) {
		t.Errorf("clip intervals = %v", clipped.Intervals())
	}
	// Clipping merges adjacent pieces with equal value back together.
	q := temporal.MustPeriods(iv(0, 3))
	clip2 := m.AtPeriods(q)
	if clip2.Len() != 1 || clip2.Units()[0].Iv != iv(0, 3) {
		t.Errorf("clip2 = %v", clip2)
	}
	// Empty periods → empty mapping.
	if !m.AtPeriods(temporal.Periods{}).IsEmpty() {
		t.Error("clip to empty periods not empty")
	}
}

func TestAtPeriodsProperty(t *testing.T) {
	m := Must(ub(rho(0, 4), true), ub(iv(6, 9), false))
	mk := func(raw []int8) temporal.Periods {
		var ivs []temporal.Interval
		for k := 0; k+1 < len(raw); k += 2 {
			s, e := raw[k], raw[k+1]
			if s > e {
				s, e = e, s
			}
			ivs = append(ivs, iv(float64(s), float64(e)))
		}
		return temporal.MustPeriods(ivs...)
	}
	f := func(raw []int8, probe int8) bool {
		p := mk(raw)
		clipped := m.AtPeriods(p)
		if clipped.Validate() != nil {
			return false
		}
		t0 := temporal.Instant(probe)
		wantPresent := m.Present(t0) && p.Contains(t0)
		u, ok := clipped.UnitAt(t0)
		if ok != wantPresent {
			return false
		}
		if ok {
			orig, _ := m.UnitAt(t0)
			return u.V == orig.V
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestConcatAndBuilder(t *testing.T) {
	a := Must(ub(rho(0, 2), true))
	b := Must(ub(rho(2, 4), true), ub(iv(5, 6), false))
	c, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// [0,2) and [2,4) with equal value merge into [0,4).
	if c.Len() != 2 {
		t.Fatalf("concat = %v", c)
	}
	if c.Units()[0].Iv != rho(0, 4) {
		t.Errorf("merged = %v", c.Units()[0].Iv)
	}
	// Builder enforces temporal order.
	var bld Builder[units.UBool]
	bld.Append(ub(rho(0, 2), true))
	bld.Append(ub(rho(2, 3), false))
	bld.Append(ub(rho(3, 4), false)) // merges with previous
	m := bld.MustBuild()
	if m.Len() != 2 || m.Units()[1].Iv != rho(2, 4) {
		t.Errorf("builder = %v", m)
	}
	var bad Builder[units.UBool]
	bad.Append(ub(iv(5, 6), true))
	bad.Append(ub(iv(0, 1), true))
	if _, err := bad.Build(); err == nil {
		t.Error("out-of-order append accepted")
	}
}

func TestConcatRejectsOverlap(t *testing.T) {
	a := Must(ub(iv(0, 5), true))
	b := Must(ub(iv(3, 8), true))
	if _, err := Concat(a, b); err == nil {
		t.Error("overlapping concat accepted")
	}
}

func TestMappingWithURealUnits(t *testing.T) {
	// The generic machinery works for any unit type.
	u1 := units.NewUReal(rho(0, 5), 0, 1, 0, false)  // t
	u2 := units.NewUReal(rho(5, 10), 0, 0, 5, false) // constant 5
	m := Must(u1, u2)
	got, ok := m.UnitAt(7)
	if !ok || got.Eval(7) != 5 {
		t.Error("ureal mapping UnitAt wrong")
	}
	got, ok = m.UnitAt(3)
	if !ok || got.Eval(3) != 3 {
		t.Error("ureal mapping eval wrong")
	}
}
