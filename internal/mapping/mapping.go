// Package mapping implements the mapping(unit) type constructor of
// Section 3.2.4: the sliced representation of a moving object as an
// ordered array of temporal units with pairwise disjoint intervals,
// where adjacent units must carry distinct unit functions (minimal,
// unique representation). The array is ordered by unit interval, which
// gives O(log n) instant lookup (binary search, Section 5.1) and O(n+m)
// parallel traversal for binary operations (refinement partition,
// Section 5.2).
package mapping

import (
	"errors"
	"fmt"
	"slices"
	"strings"

	"movingdb/internal/temporal"
	"movingdb/internal/units"
)

// ErrInvalidMapping reports a violation of the mapping carrier set
// constraints.
var ErrInvalidMapping = errors.New("mapping: invalid sliced representation")

// Mapping is a sliced representation over unit type U. The zero value is
// the everywhere-undefined moving object.
type Mapping[U units.Unit[U]] struct {
	us []U
}

// New validates and builds a mapping from units: unit intervals must be
// pairwise disjoint and adjacent units must differ in their unit
// function. Units may be given in any order; they are sorted by
// interval.
func New[U units.Unit[U]](us ...U) (Mapping[U], error) {
	work := make([]U, len(us))
	copy(work, us)
	slices.SortFunc(work, func(a, b U) int {
		ia, ib := a.Interval(), b.Interval()
		switch {
		case ia.Start < ib.Start:
			return -1
		case ia.Start > ib.Start:
			return 1
		case ia.LC && !ib.LC:
			return -1
		case !ia.LC && ib.LC:
			return 1
		}
		return 0
	})
	m := Mapping[U]{us: work}
	if err := m.Validate(); err != nil {
		return Mapping[U]{}, err
	}
	return m, nil
}

// Must is like New but panics on invalid input.
func Must[U units.Unit[U]](us ...U) Mapping[U] {
	m, err := New(us...)
	if err != nil {
		panic(err)
	}
	return m
}

// FromOrdered wraps an already ordered and validated unit slice without
// copying or checking; for trusted construction paths (storage decode
// verifies separately, operations produce ordered output by
// construction).
func FromOrdered[U units.Unit[U]](us []U) Mapping[U] {
	m := Mapping[U]{us: us}
	debugValidate("FromOrdered", m)
	return m
}

// Validate checks the carrier set constraints of Section 3.2.4.
func (m Mapping[U]) Validate() error {
	for i, u := range m.us {
		if err := u.Interval().Validate(); err != nil {
			return fmt.Errorf("%w: unit %d: %v", ErrInvalidMapping, i, err)
		}
		if i == 0 {
			continue
		}
		prev := m.us[i-1]
		pi, ci := prev.Interval(), u.Interval()
		if !pi.RDisjoint(ci) {
			return fmt.Errorf("%w: unit intervals %v and %v overlap or are out of order", ErrInvalidMapping, pi, ci)
		}
		if pi.Adjacent(ci) && prev.EqualFunc(u) {
			return fmt.Errorf("%w: adjacent units %v and %v carry equal values", ErrInvalidMapping, pi, ci)
		}
	}
	return nil
}

// Units returns the ordered unit array (shared; read-only).
func (m Mapping[U]) Units() []U { return m.us }

// Len returns the number of units.
func (m Mapping[U]) Len() int { return len(m.us) }

// IsEmpty reports whether the moving object is nowhere defined.
func (m Mapping[U]) IsEmpty() bool { return len(m.us) == 0 }

// FindUnit returns the index of the unit whose interval contains t, by
// binary search; ok is false if t lies in no unit.
func (m Mapping[U]) FindUnit(t temporal.Instant) (int, bool) {
	lo, hi := 0, len(m.us)
	for lo < hi {
		mid := (lo + hi) / 2
		iv := m.us[mid].Interval()
		switch {
		case iv.Contains(t):
			return mid, true
		case t < iv.Start || (t == iv.Start && !iv.LC):
			hi = mid
		default:
			lo = mid + 1
		}
	}
	return lo, false
}

// UnitAt returns the unit whose interval contains t.
func (m Mapping[U]) UnitAt(t temporal.Instant) (U, bool) {
	var zero U
	i, ok := m.FindUnit(t)
	if !ok {
		return zero, false
	}
	return m.us[i], true
}

// Present reports whether the moving object is defined at t.
func (m Mapping[U]) Present(t temporal.Instant) bool {
	_, ok := m.FindUnit(t)
	return ok
}

// DefTime returns the set of time intervals at which the object is
// defined (the domain projection of the abstract model).
func (m Mapping[U]) DefTime() temporal.Periods {
	ivs := make([]temporal.Interval, 0, len(m.us))
	for _, u := range m.us {
		ivs = append(ivs, u.Interval())
	}
	return temporal.MustPeriods(ivs...)
}

// Intervals returns the ordered unit intervals.
func (m Mapping[U]) Intervals() []temporal.Interval {
	ivs := make([]temporal.Interval, 0, len(m.us))
	for _, u := range m.us {
		ivs = append(ivs, u.Interval())
	}
	return ivs
}

// InitialUnit returns the first unit; ok is false for an empty mapping.
func (m Mapping[U]) InitialUnit() (U, bool) {
	var zero U
	if len(m.us) == 0 {
		return zero, false
	}
	return m.us[0], true
}

// FinalUnit returns the last unit; ok is false for an empty mapping.
func (m Mapping[U]) FinalUnit() (U, bool) {
	var zero U
	if len(m.us) == 0 {
		return zero, false
	}
	return m.us[len(m.us)-1], true
}

// AtPeriods restricts the moving object to the given time periods,
// clipping units at period boundaries.
func (m Mapping[U]) AtPeriods(p temporal.Periods) Mapping[U] {
	var out []U
	ri := temporal.Refine(m.Intervals(), p.Intervals())
	for _, r := range ri {
		if r.A >= 0 && r.B >= 0 {
			out = appendMerged(out, m.us[r.A].WithInterval(r.Iv))
		}
	}
	res := Mapping[U]{us: out}
	debugValidate("AtPeriods", res)
	return res
}

// appendMerged appends unit u, merging it into the previous unit when
// the two are adjacent and carry the same unit function (the concat
// operation of Section 5.2, O(1) per unit).
func appendMerged[U units.Unit[U]](us []U, u U) []U {
	if n := len(us); n > 0 {
		prev := us[n-1]
		pi, ci := prev.Interval(), u.Interval()
		if pi.Adjacent(ci) && prev.EqualFunc(u) {
			if merged, ok := pi.Union(ci); ok {
				us[n-1] = prev.WithInterval(merged)
				return us
			}
		}
	}
	return append(us, u)
}

// Concat merges two mappings whose definition times are in temporal
// order (every unit of m before every unit of n, except that the last
// unit of m may be adjacent to the first of n). It is the concat
// operation used by the inside algorithm.
func Concat[U units.Unit[U]](m, n Mapping[U]) (Mapping[U], error) {
	out := make([]U, 0, len(m.us)+len(n.us))
	out = append(out, m.us...)
	for _, u := range n.us {
		out = appendMerged(out, u)
	}
	res := Mapping[U]{us: out}
	if err := res.Validate(); err != nil {
		return Mapping[U]{}, err
	}
	return res, nil
}

// Builder accumulates units in temporal order, merging adjacent equal
// units; it is the standard way for operations to assemble result
// mappings in O(1) per appended unit.
type Builder[U units.Unit[U]] struct {
	us  []U
	err error
}

// Append adds a unit that must start no earlier than the previous one
// ends; violations are recorded and surfaced by Build.
func (b *Builder[U]) Append(u U) {
	if b.err != nil {
		return
	}
	if n := len(b.us); n > 0 {
		pi := b.us[n-1].Interval()
		if !pi.RDisjoint(u.Interval()) {
			b.err = fmt.Errorf("%w: unit %v appended after %v", ErrInvalidMapping, u.Interval(), pi)
			return
		}
	}
	b.us = appendMerged(b.us, u)
}

// Build returns the assembled mapping.
func (b *Builder[U]) Build() (Mapping[U], error) {
	if b.err != nil {
		return Mapping[U]{}, b.err
	}
	m := Mapping[U]{us: b.us}
	debugValidate("Builder.Build", m)
	return m, nil
}

// MustBuild returns the assembled mapping and panics on an invalid
// append sequence (which indicates a bug in the calling operation).
func (b *Builder[U]) MustBuild() Mapping[U] {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}

// String renders the mapping unit by unit.
func (m Mapping[U]) String() string {
	var b strings.Builder
	b.WriteString("mapping[")
	for i, u := range m.us {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%v", u)
	}
	b.WriteByte(']')
	return b.String()
}
