package index

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"movingdb/internal/geom"
)

// knnFixture is a set of random points indexed as degenerate cubes,
// split between the base tree and the delta buffer so best-first
// traversal exercises both sources.
type knnFixture struct {
	xs, ys []float64
	live   []bool // refine reports ok only for live ids
	snap   Snapshot
}

func buildKNNFixture(rng *rand.Rand, n int, tMin, tMax float64) *knnFixture {
	f := &knnFixture{xs: make([]float64, n), ys: make([]float64, n), live: make([]bool, n)}
	entries := make([]Entry, 0, n+n/10)
	for i := 0; i < n; i++ {
		f.xs[i] = rng.Float64() * 1000
		f.ys[i] = rng.Float64() * 1000
		f.live[i] = rng.Float64() > 0.1 // ~10% of ids refine to "undefined at t"
		r := geom.Rect{MinX: f.xs[i], MinY: f.ys[i], MaxX: f.xs[i], MaxY: f.ys[i]}
		entries = append(entries, Entry{Cube: geom.Cube{Rect: r, MinT: tMin, MaxT: tMax}, ID: int64(i)})
		if i%7 == 0 {
			// Duplicate entries for the same id (a unit indexed in
			// pieces); refinement must still yield the id once.
			entries = append(entries, Entry{Cube: geom.Cube{Rect: r, MinT: tMin, MaxT: tMax}, ID: int64(i)})
		}
	}
	split := len(entries) * 3 / 4
	d := NewDynamic(Build(slices.Clone(entries[:split])), 1<<30)
	d.InsertBatch(entries[split:])
	f.snap = d.Snapshot()
	return f
}

func (f *knnFixture) refine(qx, qy float64) func(id int64) (int64, float64, bool) {
	return func(id int64) (int64, float64, bool) {
		if !f.live[id] {
			return id, 0, false
		}
		return id, math.Hypot(f.xs[id]-qx, f.ys[id]-qy), true
	}
}

// oracle returns the expected neighbor list by brute force: live points
// within maxDist (when >= 0), ordered by (distance, id), the first k
// (k <= 0 means unbounded).
func (f *knnFixture) oracle(qx, qy float64, k int, maxDist float64) []Neighbor {
	var all []Neighbor
	for i := range f.xs {
		if !f.live[i] {
			continue
		}
		d := math.Hypot(f.xs[i]-qx, f.ys[i]-qy)
		if maxDist >= 0 && d > maxDist {
			continue
		}
		all = append(all, Neighbor{Key: int64(i), Dist: d})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Key < all[j].Key
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// TestNearestMatchesBruteForce is the k-NN property test: on 1000
// random points, best-first traversal over base + delta must return
// exactly the brute-force answer for random (query point, k, radius)
// combinations, in (distance, id) order.
func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := buildKNNFixture(rng, 1000, 0, 100)
	for trial := 0; trial < 60; trial++ {
		qx, qy := rng.Float64()*1200-100, rng.Float64()*1200-100
		k := 1 + rng.Intn(20)
		radius := -1.0
		switch trial % 3 {
		case 1:
			radius = 20 + rng.Float64()*300
		case 2:
			radius = 20 + rng.Float64()*300
			k = 0 // pure range query
		}
		got, _ := f.snap.Nearest(qx, qy, 50, k, radius, f.refine(qx, qy))
		want := f.oracle(qx, qy, k, radius)
		if len(got) != len(want) {
			t.Fatalf("trial %d (k=%d r=%.1f): got %d neighbors, want %d", trial, k, radius, len(got), len(want))
		}
		for i := range got {
			if got[i].Key != want[i].Key || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("trial %d (k=%d r=%.1f) neighbor %d: got (%d, %g), want (%d, %g)",
					trial, k, radius, i, got[i].Key, got[i].Dist, want[i].Key, want[i].Dist)
			}
		}
	}
}

// TestNearestTimePruning: entries whose time extent excludes the query
// instant are pruned without refinement; entries covering it are found.
func TestNearestTimePruning(t *testing.T) {
	past := Entry{Cube: geom.Cube{Rect: geom.Rect{MinX: 1, MinY: 1, MaxX: 1, MaxY: 1}, MinT: 0, MaxT: 10}, ID: 0}
	now := Entry{Cube: geom.Cube{Rect: geom.Rect{MinX: 5, MinY: 5, MaxX: 5, MaxY: 5}, MinT: 10, MaxT: 30}, ID: 1}
	d := NewDynamic(Build([]Entry{past}), 1<<30)
	d.Insert(now)
	refined := map[int64]int{}
	got, _ := d.Snapshot().Nearest(0, 0, 20, 5, -1, func(id int64) (int64, float64, bool) {
		refined[id]++
		return id, float64(id), true
	})
	if len(got) != 1 || got[0].Key != 1 {
		t.Fatalf("neighbors: %+v", got)
	}
	if refined[0] != 0 {
		t.Fatalf("entry outside the query instant was refined: %v", refined)
	}
}

// TestNearestEmpty: an empty snapshot and a k=0, radius<0 call both
// return no neighbors without panicking.
func TestNearestEmpty(t *testing.T) {
	var snap Snapshot
	if got, _ := snap.Nearest(0, 0, 0, 5, -1, func(id int64) (int64, float64, bool) { return id, 0, true }); len(got) != 0 {
		t.Fatalf("empty snapshot returned %+v", got)
	}
}

// TestSearchSortedAppend: all three search entry points document that
// the appended region comes back sorted ascending — verify against
// random data, with a non-empty destination prefix left untouched.
func TestSearchSortedAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	entries := make([]Entry, 500)
	for i := range entries {
		x, y, ts := rng.Float64()*100, rng.Float64()*100, rng.Float64()*100
		entries[i] = Entry{
			Cube: geom.Cube{Rect: geom.Rect{MinX: x, MinY: y, MaxX: x + 5, MaxY: y + 5}, MinT: ts, MaxT: ts + 10},
			// Insertion order deliberately differs from id order.
			ID: int64((i * 131) % 500),
		}
	}
	tree := Build(slices.Clone(entries[:300]))
	dyn := NewDynamic(Build(slices.Clone(entries[:300])), 1<<30)
	dyn.InsertBatch(entries[300:])
	q := geom.Cube{Rect: geom.Rect{MinX: 20, MinY: 20, MaxX: 70, MaxY: 70}, MinT: 0, MaxT: 60}

	check := func(name string, out []int64) {
		t.Helper()
		if len(out) < 1 || out[0] != -7 {
			t.Fatalf("%s: destination prefix clobbered: %v", name, out)
		}
		if !slices.IsSorted(out[1:]) {
			t.Fatalf("%s: appended ids not sorted: %v", name, out[1:])
		}
		if len(out) == 1 {
			t.Fatalf("%s: query matched nothing; fixture too small", name)
		}
	}
	out, _ := tree.Search(q, []int64{-7})
	check("RTree.Search", out)
	out, _ = dyn.Search(q, []int64{-7})
	check("Dynamic.Search", out)
	out, _ = dyn.Snapshot().Search(q, []int64{-7})
	check("Snapshot.Search", out)
}
