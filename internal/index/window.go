package index

import (
	"math"

	"movingdb/internal/geom"
	"movingdb/internal/moving"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
)

// MPointIndex indexes the units of a collection of moving points for
// spatio-temporal window queries: "which objects were inside rectangle W
// at some instant of period P". The R-tree over unit cubes gives the
// candidate set; an exact refinement step solves the per-unit linear
// containment (the coordinates of a upoint are linear in t, so the times
// inside an axis-aligned window form an interval computable in closed
// form).
type MPointIndex struct {
	tree    *RTree
	objects []moving.MPoint
}

// BuildMPointIndex indexes every unit of every object; the entry ID
// encodes (object, unit).
func BuildMPointIndex(objects []moving.MPoint) *MPointIndex {
	var entries []Entry
	for oi, p := range objects {
		for ui, u := range p.M.Units() {
			entries = append(entries, Entry{Cube: u.Cube(), ID: int64(oi)<<32 | int64(ui)})
		}
	}
	return &MPointIndex{tree: Build(entries), objects: objects}
}

// Tree exposes the underlying R-tree (for statistics).
func (ix *MPointIndex) Tree() *RTree { return ix.tree }

// Window reports the object indices that are inside rect during iv at
// some instant, in ascending order. The refinement step is exact.
func (ix *MPointIndex) Window(rect geom.Rect, iv temporal.Interval) []int {
	q := geom.Cube{Rect: rect, MinT: float64(iv.Start), MaxT: float64(iv.End)}
	ids, _ := ix.tree.Search(q, nil)
	seen := make(map[int]bool)
	var out []int
	for _, id := range ids {
		oi := int(id >> 32)
		ui := int(id & 0xffffffff)
		if seen[oi] {
			continue
		}
		u := ix.objects[oi].M.Units()[ui]
		if unitInWindow(u.M.X0, u.M.X1, u.M.Y0, u.M.Y1, rect, u.Iv, iv) {
			seen[oi] = true
			out = append(out, oi)
		}
	}
	// Ascending object order for deterministic results.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// UPointInWindow reports exactly whether the unit is inside rect at
// some instant of iv — the refinement predicate behind Window, exported
// for the live ingestion path, which refines delta-index candidates
// against the current unit data of its object store.
func UPointInWindow(u units.UPoint, rect geom.Rect, iv temporal.Interval) bool {
	return unitInWindow(u.M.X0, u.M.X1, u.M.Y0, u.M.Y1, rect, u.Iv, iv)
}

// unitInWindow decides exactly whether the linear motion is inside rect
// at some instant of both intervals: each coordinate constraint
// lo ≤ c0 + c1·t ≤ hi yields a t-interval; their intersection with the
// unit interval and the query interval must be non-empty.
func unitInWindow(x0, x1, y0, y1 float64, rect geom.Rect, unitIv, queryIv temporal.Interval) bool {
	lo := math.Max(float64(unitIv.Start), float64(queryIv.Start))
	hi := math.Min(float64(unitIv.End), float64(queryIv.End))
	if lo > hi {
		return false
	}
	var ok bool
	lo, hi, ok = clampLinear(x0, x1, rect.MinX, rect.MaxX, lo, hi)
	if !ok {
		return false
	}
	lo, hi, ok = clampLinear(y0, y1, rect.MinY, rect.MaxY, lo, hi)
	if !ok {
		return false
	}
	// Closure flags: an intersection reduced to a single endpoint that
	// is open in either interval is rejected conservatively only when
	// both constraining intervals exclude it; for window queries the
	// measure-zero case is reported as a hit iff both intervals contain
	// the instant.
	if lo == hi {
		t := temporal.Instant(lo)
		return unitIv.Contains(t) && queryIv.Contains(t)
	}
	return lo < hi
}

// clampLinear intersects [lo, hi] with the times where
// min ≤ c0 + c1·t ≤ max.
func clampLinear(c0, c1, minV, maxV, lo, hi float64) (float64, float64, bool) {
	if c1 == 0 {
		if c0 < minV || c0 > maxV {
			return 0, 0, false
		}
		return lo, hi, true
	}
	t1 := (minV - c0) / c1
	t2 := (maxV - c0) / c1
	if t1 > t2 {
		t1, t2 = t2, t1
	}
	lo = math.Max(lo, t1)
	hi = math.Min(hi, t2)
	if lo > hi {
		return 0, 0, false
	}
	return lo, hi, true
}

// ScanWindow answers the same query by scanning every unit of every
// object — the baseline for the index ablation.
func ScanWindow(objects []moving.MPoint, rect geom.Rect, iv temporal.Interval) []int {
	var out []int
	for oi, p := range objects {
		for _, u := range p.M.Units() {
			if unitInWindow(u.M.X0, u.M.X1, u.M.Y0, u.M.Y1, rect, u.Iv, iv) {
				out = append(out, oi)
				break
			}
		}
	}
	return out
}
