package index

import (
	"slices"
	"sync"

	"movingdb/internal/geom"
)

// DefaultMergeThreshold is the delta-buffer size at which a Dynamic
// index folds the buffer into a rebuilt base tree.
const DefaultMergeThreshold = 4096

// Dynamic makes the static STR tree incrementally maintainable, in the
// LSM style the live ingestion path needs: inserts land in a delta
// buffer that Search scans linearly alongside the immutable base tree,
// and when the buffer grows past the merge threshold the base is
// rebuilt by bulk-loading the merged entry set and the buffer is
// emptied. Linear delta scans stay cheap because the buffer is bounded
// by the threshold; the rebuild amortises to O(log n) bulk-load work
// per insert. All methods are safe for concurrent use.
type Dynamic struct {
	mu        sync.RWMutex
	base      *RTree  // moguard: guarded by mu
	delta     []Entry // moguard: guarded by mu
	threshold int     // moguard: immutable
	merges    int     // moguard: guarded by mu
}

// NewDynamic wraps a bulk-loaded base tree (nil means empty) with a
// delta buffer that triggers a rebuild past threshold entries
// (DefaultMergeThreshold when <= 0).
func NewDynamic(base *RTree, threshold int) *Dynamic {
	if base == nil {
		base = Build(nil)
	}
	if threshold <= 0 {
		threshold = DefaultMergeThreshold
	}
	return &Dynamic{base: base, threshold: threshold}
}

// Insert adds one entry and reports whether it triggered a merge.
func (d *Dynamic) Insert(e Entry) bool { return d.InsertBatch([]Entry{e}) }

// InsertBatch adds entries to the delta buffer, rebuilding the base
// tree when the buffer exceeds the merge threshold. It reports whether
// a merge happened.
func (d *Dynamic) InsertBatch(es []Entry) bool {
	if len(es) == 0 {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.delta = append(d.delta, es...)
	if len(d.delta) <= d.threshold {
		return false
	}
	d.mergeLocked()
	return true
}

// ForceMerge folds a non-empty delta buffer into the base tree now.
func (d *Dynamic) ForceMerge() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.delta) > 0 {
		d.mergeLocked()
	}
}

func (d *Dynamic) mergeLocked() {
	all := make([]Entry, 0, len(d.base.entries)+len(d.delta))
	all = append(all, d.base.entries...)
	all = append(all, d.delta...)
	d.base = Build(all)
	d.delta = nil
	d.merges++
}

// Snapshot is an immutable point-in-time view of a Dynamic index: the
// base tree pointer plus the delta buffer clipped to its length at
// capture. Both are safe to search without any lock — the base tree is
// never mutated after Build, and the delta slice's visible prefix is
// append-only (inserts land past the captured length, merges swap in a
// fresh slice and leave the captured one behind). The zero value is an
// empty, searchable snapshot. Epoch-pinned readers hold one for their
// whole lifetime, so a concurrent merge or insert never moves the data
// out from under them.
type Snapshot struct {
	base  *RTree
	delta []Entry
}

// Snapshot captures the current base tree and delta prefix. The lock is
// held only for the two pointer reads, not for any search that follows.
func (d *Dynamic) Snapshot() Snapshot {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return Snapshot{base: d.base, delta: d.delta}
}

// Search appends to out the IDs of all entries — base and captured
// delta — whose cubes intersect q, and returns the number of nodes
// visited plus delta entries scanned. Lock-free: the snapshot's data is
// immutable. Duplicate IDs may appear exactly as in Dynamic.Search.
// Like RTree.Search, the appended region comes back sorted ascending.
func (s Snapshot) Search(q geom.Cube, out []int64) ([]int64, int) {
	start := len(out)
	visited := 0
	if s.base != nil {
		out, visited = s.base.Search(q, out)
	}
	for _, e := range s.delta {
		if e.Cube.Intersects(q) {
			out = append(out, e.ID)
		}
	}
	slices.Sort(out[start:])
	return out, visited + len(s.delta)
}

// Len returns the number of entries visible in the snapshot.
func (s Snapshot) Len() int {
	n := len(s.delta)
	if s.base != nil {
		n += s.base.Len()
	}
	return n
}

// Search appends to out the IDs of all entries — base and delta — whose
// cubes intersect q, and returns the number of nodes visited plus delta
// entries scanned. Duplicate IDs may appear when a unit was indexed in
// pieces (an append merged into its predecessor adds a second entry for
// the extension); callers dedupe during refinement. Like RTree.Search,
// the appended region comes back sorted ascending.
func (d *Dynamic) Search(q geom.Cube, out []int64) ([]int64, int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	start := len(out)
	out, visited := d.base.Search(q, out)
	for _, e := range d.delta {
		if e.Cube.Intersects(q) {
			out = append(out, e.ID)
		}
	}
	slices.Sort(out[start:])
	return out, visited + len(d.delta)
}

// Len returns the total number of entries (base + delta).
func (d *Dynamic) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.base.Len() + len(d.delta)
}

// BaseLen returns the number of entries in the bulk-loaded base tree.
func (d *Dynamic) BaseLen() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.base.Len()
}

// DeltaLen returns the number of entries waiting in the delta buffer.
func (d *Dynamic) DeltaLen() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.delta)
}

// Merges returns how many delta-fold rebuilds have happened.
func (d *Dynamic) Merges() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.merges
}

// Validate checks the structural invariants of the current base tree.
func (d *Dynamic) Validate() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.base.Validate()
}
