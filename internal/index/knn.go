package index

import (
	"math"

	"movingdb/internal/geom"
)

// Best-first nearest-neighbour traversal (Hjaltason & Samet style) over
// a Snapshot: one priority queue holds tree nodes (ranked by the
// minimum possible distance from the query point to their cube), entry
// candidates (ranked the same way by their entry cube) and refined
// objects (ranked by exact distance). Popping in distance order
// guarantees that when a refined object surfaces, nothing still queued
// can beat it — every queued item's rank is a lower bound on anything
// it could produce.
//
// The traversal is time-aware: the query asks for neighbours at one
// instant t, so nodes and entries whose cube time range excludes t are
// pruned outright. That prune is complete because the store keeps the
// union of a unit's entry cubes covering the unit's full extent (see
// Store.Apply): for any object defined at t, at least one entry's time
// range contains t, and that entry's spatial rect contains the object's
// position at t — so its minimum distance is a sound lower bound.

// Neighbor is one nearest-neighbour result: the caller's refinement key
// (for the epoch read path, the object slot) and the exact distance
// from the query point.
type Neighbor struct {
	Key  int64
	Dist float64
}

// Queue item kinds, ordered so that on a distance tie refined results
// pop before the candidates that could only match them.
const (
	knnNode uint8 = iota
	knnEntry
	knnRefined
)

type knnItem struct {
	dist float64
	kind uint8
	id   int64 // node index, entry payload id, or refinement key
}

// knnHeap is a plain binary min-heap over (dist, kind desc, id asc) —
// a deterministic total order, so traversal and tie-breaking are pure
// functions of the snapshot.
type knnHeap []knnItem

func (h knnHeap) less(i, j int) bool {
	a, b := h[i], h[j]
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	if a.kind != b.kind {
		return a.kind > b.kind
	}
	return a.id < b.id
}

func (h *knnHeap) push(it knnItem) {
	// moguard: allocok growth is amortized by the pre-sized arena Nearest allocates; push itself must stay an append to keep the heap a plain slice
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *knnHeap) pop() knnItem {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

// minDistRect returns the minimum Euclidean distance from (x, y) to any
// point of r — zero when the point is inside.
func minDistRect(x, y float64, r geom.Rect) float64 {
	dx := max(r.MinX-x, x-r.MaxX, 0)
	dy := max(r.MinY-y, y-r.MaxY, 0)
	return math.Hypot(dx, dy)
}

// cubeCoversT reports whether t lies in the cube's time range.
func cubeCoversT(c geom.Cube, t float64) bool {
	return c.MinT <= t && t <= c.MaxT
}

// Nearest finds the k entries-turned-objects closest to (x, y) at
// instant t, at most maxDist away. k <= 0 means no count bound (a pure
// radius query, still sorted by distance); maxDist < 0 means no radius
// bound. refine maps an entry payload id to the caller's dedup key and
// the exact distance at t; ok = false marks the key as unable to
// contribute (stale entry, object undefined at t) and the traversal
// never asks about it again. Results come back in ascending (distance,
// key) order; scanned counts visited tree nodes plus delta entries, for
// the scan-vs-index ablation. Deterministic: pure function of the
// snapshot and the arguments (ties broken by key).
//
// moguard: hotpath
func (s Snapshot) Nearest(x, y, t float64, k int, maxDist float64, refine func(id int64) (key int64, dist float64, ok bool)) ([]Neighbor, int) {
	if maxDist < 0 {
		maxDist = math.Inf(1)
	}
	// One pre-sized arena absorbs the frontier's churn; 64 slots cover a
	// typical best-first frontier so push almost never grows the array.
	h := make(knnHeap, 0, 64)
	if s.base != nil && s.base.root >= 0 {
		if nd := s.base.nodes[s.base.root]; cubeCoversT(nd.cube, t) {
			if d := minDistRect(x, y, nd.cube.Rect); d <= maxDist {
				h.push(knnItem{dist: d, kind: knnNode, id: int64(s.base.root)})
			}
		}
	}
	scanned := len(s.delta)
	for _, e := range s.delta {
		if !cubeCoversT(e.Cube, t) {
			continue
		}
		if d := minDistRect(x, y, e.Cube.Rect); d <= maxDist {
			h.push(knnItem{dist: d, kind: knnEntry, id: e.ID})
		}
	}
	// moguard: allocok refinement keys are sparse int64s from an unbounded domain; a map is the right dedup structure and it allocates once per query
	seen := make(map[int64]bool)
	outCap := k
	if outCap <= 0 {
		outCap = 16 // radius query: no count bound, start small
	}
	out := make([]Neighbor, 0, outCap)
	for len(h) > 0 {
		it := h.pop()
		if it.dist > maxDist {
			break
		}
		switch it.kind {
		case knnRefined:
			out = append(out, Neighbor{Key: it.id, Dist: it.dist})
			if k > 0 && len(out) >= k {
				return out, scanned
			}
		case knnEntry:
			key, d, ok := refine(it.id)
			if seen[key] {
				continue
			}
			seen[key] = true
			if ok && d <= maxDist {
				h.push(knnItem{dist: d, kind: knnRefined, id: key})
			}
		default: // knnNode
			scanned++
			nd := s.base.nodes[it.id]
			if nd.leaf {
				for _, e := range s.base.entries[nd.lo:nd.hi] {
					if !cubeCoversT(e.Cube, t) {
						continue
					}
					if d := minDistRect(x, y, e.Cube.Rect); d <= maxDist {
						h.push(knnItem{dist: d, kind: knnEntry, id: e.ID})
					}
				}
				continue
			}
			for c := nd.lo; c < nd.hi; c++ {
				child := s.base.nodes[c]
				if !cubeCoversT(child.cube, t) {
					continue
				}
				if d := minDistRect(x, y, child.cube.Rect); d <= maxDist {
					h.push(knnItem{dist: d, kind: knnNode, id: int64(c)})
				}
			}
		}
	}
	// Emission order is already ascending (dist, key): refined items pop
	// from the heap in exactly that order.
	return out, scanned
}
