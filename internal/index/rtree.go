// Package index provides a spatio-temporal index over the sliced
// representation: an R-tree in (x, y, t) space over the bounding cubes
// that the Section 4.2 data structures already store with every spatial
// unit. The paper itself defers indexing to related work ([TSPM98] in
// its bibliography); this package is the natural extension point a
// moving objects DBMS needs for selections like "which objects crossed
// window W during period P", and the benchmark harness uses it as an
// ablation against full scans.
package index

import (
	"fmt"
	"math"
	"slices"

	"movingdb/internal/geom"
)

// Entry is one indexed item: a bounding cube and the caller's payload
// identifier (object id, unit index, ...).
type Entry struct {
	Cube geom.Cube
	ID   int64
}

// RTree is a static R-tree built by sort-tile-recursive (STR) bulk
// loading. The tree is pointer-free in the spirit of the paper's data
// structures: nodes live in one slice and reference their children by
// index ranges.
type RTree struct {
	nodes   []node
	entries []Entry
	root    int
	height  int
}

const fanout = 16

type node struct {
	cube geom.Cube
	// leaf: entries[lo:hi]; inner: nodes[lo:hi].
	lo, hi int
	leaf   bool
}

// Build bulk-loads an R-tree over the entries using STR: sort by x,
// tile into vertical slabs, sort each slab by y, tile again, sort runs
// by t. The input slice is copied.
func Build(entries []Entry) *RTree {
	// moguard: allocok the built tree is the returned product; one allocation per index build, amortized over the flush batch
	t := &RTree{entries: append([]Entry(nil), entries...)}
	if len(t.entries) == 0 {
		t.root = -1
		return t
	}
	t.strSort()
	// Leaves over runs of fanout entries.
	level := make([]int, 0, (len(t.entries)+fanout-1)/fanout)
	for lo := 0; lo < len(t.entries); lo += fanout {
		hi := min(lo+fanout, len(t.entries))
		cube := geom.EmptyCube()
		for _, e := range t.entries[lo:hi] {
			cube = cube.Union(e.Cube)
		}
		t.nodes = append(t.nodes, node{cube: cube, lo: lo, hi: hi, leaf: true})
		level = append(level, len(t.nodes)-1)
	}
	t.height = 1
	// Inner levels: children of one parent are contiguous by
	// construction.
	for len(level) > 1 {
		next := make([]int, 0, (len(level)+fanout-1)/fanout)
		for lo := 0; lo < len(level); lo += fanout {
			hi := min(lo+fanout, len(level))
			cube := geom.EmptyCube()
			for _, ni := range level[lo:hi] {
				cube = cube.Union(t.nodes[ni].cube)
			}
			t.nodes = append(t.nodes, node{cube: cube, lo: level[lo], hi: level[hi-1] + 1, leaf: false})
			next = append(next, len(t.nodes)-1)
		}
		level = next
		t.height++
	}
	t.root = level[0]
	return t
}

// strSort orders entries by the STR tiling.
func (t *RTree) strSort() {
	center := func(e Entry) (x, y, tm float64) {
		return (e.Cube.Rect.MinX + e.Cube.Rect.MaxX) / 2,
			(e.Cube.Rect.MinY + e.Cube.Rect.MaxY) / 2,
			(e.Cube.MinT + e.Cube.MaxT) / 2
	}
	n := len(t.entries)
	leaves := (n + fanout - 1) / fanout
	sx := int(math.Ceil(math.Cbrt(float64(leaves))))
	slabX := sx * sx * fanout // entries per x-slab
	slabY := sx * fanout      // entries per (x, y)-slab

	slices.SortFunc(t.entries, func(a, b Entry) int {
		ax, _, _ := center(a)
		bx, _, _ := center(b)
		return cmpF(ax, bx)
	})
	for lo := 0; lo < n; lo += slabX {
		hi := min(lo+slabX, n)
		slices.SortFunc(t.entries[lo:hi], func(a, b Entry) int {
			_, ay, _ := center(a)
			_, by, _ := center(b)
			return cmpF(ay, by)
		})
		for l2 := lo; l2 < hi; l2 += slabY {
			h2 := min(l2+slabY, hi)
			slices.SortFunc(t.entries[l2:h2], func(a, b Entry) int {
				_, _, at := center(a)
				_, _, bt := center(b)
				return cmpF(at, bt)
			})
		}
	}
}

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Len returns the number of indexed entries.
func (t *RTree) Len() int { return len(t.entries) }

// Height returns the number of levels (0 for the empty tree).
func (t *RTree) Height() int {
	if t.root < 0 {
		return 0
	}
	return t.height
}

// Search appends to out the IDs of all entries whose cubes intersect the
// query cube and returns the result along with the number of nodes
// visited (for the scan-vs-index ablation). The appended region is
// sorted ascending (duplicates preserved), so refinement order, k-NN
// tie-breaking and cache keys derived from results are deterministic
// regardless of tree shape.
func (t *RTree) Search(q geom.Cube, out []int64) ([]int64, int) {
	if t.root < 0 {
		return out, 0
	}
	start := len(out)
	visited := 0
	var rec func(ni int)
	rec = func(ni int) {
		visited++
		nd := t.nodes[ni]
		if !nd.cube.Intersects(q) {
			return
		}
		if nd.leaf {
			for _, e := range t.entries[nd.lo:nd.hi] {
				if e.Cube.Intersects(q) {
					out = append(out, e.ID)
				}
			}
			return
		}
		for c := nd.lo; c < nd.hi; c++ {
			rec(c)
		}
	}
	rec(t.root)
	slices.Sort(out[start:])
	return out, visited
}

// Validate checks the structural invariants: every child cube is
// contained in its parent's cube and entry ranges tile the entry slice.
func (t *RTree) Validate() error {
	if t.root < 0 {
		if len(t.entries) != 0 {
			return fmt.Errorf("index: empty tree with %d entries", len(t.entries))
		}
		return nil
	}
	covered := make([]bool, len(t.entries))
	var rec func(ni int) error
	rec = func(ni int) error {
		nd := t.nodes[ni]
		if nd.leaf {
			for i := nd.lo; i < nd.hi; i++ {
				if covered[i] {
					return fmt.Errorf("index: entry %d in two leaves", i)
				}
				covered[i] = true
				if !contains(nd.cube, t.entries[i].Cube) {
					return fmt.Errorf("index: leaf cube does not cover entry %d", i)
				}
			}
			return nil
		}
		for c := nd.lo; c < nd.hi; c++ {
			if !contains(nd.cube, t.nodes[c].cube) {
				return fmt.Errorf("index: node %d does not cover child %d", ni, c)
			}
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.root); err != nil {
		return err
	}
	for i, c := range covered {
		if !c {
			return fmt.Errorf("index: entry %d not reachable", i)
		}
	}
	return nil
}

func contains(outer, inner geom.Cube) bool {
	return outer.Rect.MinX <= inner.Rect.MinX && outer.Rect.MaxX >= inner.Rect.MaxX &&
		outer.Rect.MinY <= inner.Rect.MinY && outer.Rect.MaxY >= inner.Rect.MaxY &&
		outer.MinT <= inner.MinT && outer.MaxT >= inner.MaxT
}
