package index

import (
	"math/rand"
	"slices"
	"testing"

	"movingdb/internal/geom"
	"movingdb/internal/moving"
	"movingdb/internal/temporal"
	"movingdb/internal/workload"
)

func randomCubes(rng *rand.Rand, n int) []Entry {
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		x, y, t := rng.Float64()*100, rng.Float64()*100, rng.Float64()*100
		w, h, d := rng.Float64()*10, rng.Float64()*10, rng.Float64()*10
		out = append(out, Entry{
			Cube: geom.Cube{
				Rect: geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h},
				MinT: t, MaxT: t + d,
			},
			ID: int64(i),
		})
	}
	return out
}

func TestRTreeBuildAndValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 15, 16, 17, 300, 5000} {
		tr := Build(randomCubes(rng, n))
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n > 0 && tr.Height() < 1 {
			t.Fatalf("n=%d: height = %d", n, tr.Height())
		}
	}
}

func TestRTreeSearchMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	entries := randomCubes(rng, 2000)
	tr := Build(entries)
	for trial := 0; trial < 50; trial++ {
		q := randomCubes(rng, 1)[0].Cube
		got, _ := tr.Search(q, nil)
		var want []int64
		for _, e := range entries {
			if e.Cube.Intersects(q) {
				want = append(want, e.ID)
			}
		}
		slices.Sort(got)
		slices.Sort(want)
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d: search %v != scan %v", trial, got, want)
		}
	}
}

func TestRTreePrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := Build(randomCubes(rng, 4096))
	// A tiny query must visit far fewer nodes than the whole tree.
	q := geom.Cube{Rect: geom.Rect{MinX: 50, MinY: 50, MaxX: 51, MaxY: 51}, MinT: 50, MaxT: 51}
	_, visited := tr.Search(q, nil)
	if visited >= len(tr.nodes) {
		t.Fatalf("no pruning: visited %d of %d nodes", visited, len(tr.nodes))
	}
}

func TestWindowQueryMatchesScan(t *testing.T) {
	g := workload.New(8)
	objects := make([]moving.MPoint, 40)
	for i := range objects {
		objects[i] = g.RandomTrajectory(0, 50, 10, 2)
	}
	ix := BuildMPointIndex(objects)
	if err := ix.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		x, y := rng.Float64()*900, rng.Float64()*900
		rect := geom.Rect{MinX: x, MinY: y, MaxX: x + 100, MaxY: y + 100}
		t0 := temporal.Instant(rng.Float64() * 400)
		iv := temporal.Closed(t0, t0+60)
		got := ix.Window(rect, iv)
		want := ScanWindow(objects, rect, iv)
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d: index %v != scan %v", trial, got, want)
		}
	}
}

func TestWindowRefinementIsExact(t *testing.T) {
	// An object whose bounding cube intersects the window but whose path
	// never enters it: the diagonal of a square window's complement.
	p, err := moving.MPointFromSamples([]moving.Sample{
		{T: 0, P: geom.Pt(0, 10)},
		{T: 10, P: geom.Pt(10, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := BuildMPointIndex([]moving.MPoint{p})
	// Window in the lower-left corner: the cube [0,10]² intersects it,
	// the diagonal path x+y=10 does not.
	rect := geom.Rect{MinX: 0, MinY: 0, MaxX: 3, MaxY: 3}
	if got := ix.Window(rect, temporal.Closed(0, 10)); len(got) != 0 {
		t.Fatalf("false positive: %v", got)
	}
	// A window the path clips.
	rect2 := geom.Rect{MinX: 4, MinY: 4, MaxX: 7, MaxY: 7}
	if got := ix.Window(rect2, temporal.Closed(0, 10)); len(got) != 1 {
		t.Fatalf("missed hit: %v", got)
	}
	// Same window, but a query interval before the crossing time
	// (crossing happens around t ∈ [3, 7]).
	if got := ix.Window(rect2, temporal.Closed(0, 2)); len(got) != 0 {
		t.Fatalf("temporal refinement failed: %v", got)
	}
}

func TestUnitInWindowEdgeCases(t *testing.T) {
	rect := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	// Static point inside.
	if !unitInWindow(5, 0, 5, 0, rect, temporal.Closed(0, 10), temporal.Closed(2, 3)) {
		t.Error("static inside missed")
	}
	// Static point outside.
	if unitInWindow(50, 0, 5, 0, rect, temporal.Closed(0, 10), temporal.Closed(2, 3)) {
		t.Error("static outside hit")
	}
	// Moving point entering after the query interval.
	if unitInWindow(-100, 1, 5, 0, rect, temporal.Closed(0, 200), temporal.Closed(0, 50)) {
		t.Error("late entry hit")
	}
	if !unitInWindow(-100, 1, 5, 0, rect, temporal.Closed(0, 200), temporal.Closed(100, 120)) {
		t.Error("in-window interval missed")
	}
	// Disjoint unit and query intervals.
	if unitInWindow(5, 0, 5, 0, rect, temporal.Closed(0, 10), temporal.Closed(20, 30)) {
		t.Error("disjoint intervals hit")
	}
}
