package index

import (
	"math/rand"
	"slices"
	"testing"
)

// TestDynamicSearchMatchesScan cross-checks the two-part search (base
// tree + delta buffer) against a scan over all entries, at several
// base/delta splits including empty base and empty delta.
func TestDynamicSearchMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	entries := randomCubes(rng, 3000)
	for _, split := range []int{0, 1, 1500, 2999, 3000} {
		d := NewDynamic(Build(entries[:split]), 1<<30)
		if merged := d.InsertBatch(entries[split:]); merged {
			t.Fatalf("split=%d: unexpected merge below threshold", split)
		}
		if d.Len() != len(entries) {
			t.Fatalf("split=%d: Len=%d", split, d.Len())
		}
		for trial := 0; trial < 30; trial++ {
			q := randomCubes(rng, 1)[0].Cube
			got, _ := d.Search(q, nil)
			var want []int64
			for _, e := range entries {
				if e.Cube.Intersects(q) {
					want = append(want, e.ID)
				}
			}
			slices.Sort(got)
			slices.Sort(want)
			if !slices.Equal(got, want) {
				t.Fatalf("split=%d trial=%d: got %d hits, want %d", split, trial, len(got), len(want))
			}
		}
	}
}

// TestDynamicMergeValidate is the satellite coverage: trees rebuilt
// from merged delta+base entry sets must pass the R-tree invariant
// checks, across repeated merge cycles.
func TestDynamicMergeValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := NewDynamic(Build(randomCubes(rng, 100)), 64)
	total := 100
	for round := 0; round < 6; round++ {
		batch := randomCubes(rng, 50)
		for i := range batch {
			batch[i].ID = int64(total + i) // keep ids distinct across rounds
		}
		d.InsertBatch(batch)
		total += len(batch)
		if err := d.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if d.Merges() == 0 {
		t.Fatal("threshold of 64 with 300 inserts must have merged")
	}
	if d.DeltaLen() > 64 {
		t.Fatalf("delta not folded: %d entries", d.DeltaLen())
	}
	if d.Len() != total {
		t.Fatalf("entries lost across merges: %d != %d", d.Len(), total)
	}
	d.ForceMerge()
	if d.DeltaLen() != 0 || d.BaseLen() != total {
		t.Fatalf("force merge: base=%d delta=%d", d.BaseLen(), d.DeltaLen())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSearchReusedOutSlice is the regression satellite: Search with a
// reused (non-empty capacity, length reset) out slice must return
// exactly what a fresh slice returns, for both the plain R-tree and
// the dynamic index.
func TestSearchReusedOutSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	entries := randomCubes(rng, 2000)
	tr := Build(entries[:1600])
	d := NewDynamic(tr, 1<<30)
	d.InsertBatch(entries[1600:])

	var reusedTree, reusedDyn []int64
	for trial := 0; trial < 40; trial++ {
		q := randomCubes(rng, 1)[0].Cube

		fresh, _ := tr.Search(q, nil)
		reusedTree, _ = tr.Search(q, reusedTree[:0])
		if !slices.Equal(fresh, reusedTree) {
			t.Fatalf("trial %d: rtree reused-slice result differs: %v vs %v", trial, reusedTree, fresh)
		}

		freshDyn, _ := d.Search(q, nil)
		reusedDyn, _ = d.Search(q, reusedDyn[:0])
		if !slices.Equal(freshDyn, reusedDyn) {
			t.Fatalf("trial %d: dynamic reused-slice result differs: %v vs %v", trial, reusedDyn, freshDyn)
		}
	}
}
