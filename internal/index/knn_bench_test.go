package index

import (
	"math/rand"
	"testing"
)

// BenchmarkSnapshotNearest measures the best-first k-NN traversal over
// a mixed base+delta snapshot — the index half of the /v1/nearby path,
// pinned by an allocation budget (alloc_budgets.json).
func BenchmarkSnapshotNearest(b *testing.B) {
	f := buildKNNFixture(rand.New(rand.NewSource(11)), 5000, 0, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qx := float64((i * 137) % 1000)
		qy := float64((i * 89) % 1000)
		_, _ = f.snap.Nearest(qx, qy, 50, 10, -1, f.refine(qx, qy))
	}
}
