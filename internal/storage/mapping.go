package storage

import (
	"fmt"

	"movingdb/internal/mapping"
	"movingdb/internal/moving"
	"movingdb/internal/units"
)

// This file implements the mapping layout of Figure 7: one units array
// holding fixed-size unit records ordered by time interval, plus k
// shared subarrays for the variable-size unit types. Each variable-size
// unit record carries (start, end) indices into the shared subarrays —
// the "subarray" concept of Section 4.2 — so the whole moving object
// occupies a fixed number of contiguous memory blocks and contains no
// pointers.

// --- fixed size units: mbool / mint / mstring / mreal / mpoint ---

// EncodeMBool stores a moving bool: a single units array of fixed-size
// (interval, bool) records.
func EncodeMBool(b moving.MBool) Encoded {
	var root, arr writer
	root.u32(uint32(b.M.Len()))
	for _, u := range b.M.Units() {
		writeInterval(&arr, u.Iv)
		arr.boolv(u.V)
	}
	return Encoded{Root: root.buf, Arrays: [][]byte{arr.buf}}
}

// DecodeMBool reverses EncodeMBool, re-validating the mapping
// constraints.
func DecodeMBool(e Encoded) (moving.MBool, error) {
	us, err := decodeUnits(e, func(r *reader) (units.UBool, error) {
		iv, err := readInterval(r)
		if err != nil {
			return units.UBool{}, err
		}
		return units.UBool{Iv: iv, V: r.boolv()}, nil
	})
	if err != nil {
		return moving.MBool{}, err
	}
	return moving.NewMBool(us...)
}

// EncodeMInt stores a moving int.
func EncodeMInt(b moving.MInt) Encoded {
	var root, arr writer
	root.u32(uint32(b.M.Len()))
	for _, u := range b.M.Units() {
		writeInterval(&arr, u.Iv)
		arr.i64(u.V)
	}
	return Encoded{Root: root.buf, Arrays: [][]byte{arr.buf}}
}

// DecodeMInt reverses EncodeMInt.
func DecodeMInt(e Encoded) (moving.MInt, error) {
	us, err := decodeUnits(e, func(r *reader) (units.UInt, error) {
		iv, err := readInterval(r)
		if err != nil {
			return units.UInt{}, err
		}
		return units.UInt{Iv: iv, V: r.i64()}, nil
	})
	if err != nil {
		return moving.MInt{}, err
	}
	return moving.NewMInt(us...)
}

// EncodeMString stores a moving string. String payloads live in a
// second array (they are the only variable-size component of the
// otherwise fixed-size unit records).
func EncodeMString(b moving.MString) Encoded {
	var root, arr, strArr writer
	root.u32(uint32(b.M.Len()))
	for _, u := range b.M.Units() {
		writeInterval(&arr, u.Iv)
		arr.u32(uint32(len(strArr.buf)))
		arr.u32(uint32(len(u.V)))
		strArr.buf = append(strArr.buf, u.V...)
	}
	return Encoded{Root: root.buf, Arrays: [][]byte{arr.buf, strArr.buf}}
}

// DecodeMString reverses EncodeMString.
func DecodeMString(e Encoded) (moving.MString, error) {
	if len(e.Arrays) != 2 {
		return moving.MString{}, fmt.Errorf("%w: mstring needs 2 arrays", ErrCorrupt)
	}
	strs := e.Arrays[1]
	us, err := decodeUnits(Encoded{Root: e.Root, Arrays: e.Arrays[:1]}, func(r *reader) (units.UString, error) {
		iv, err := readInterval(r)
		if err != nil {
			return units.UString{}, err
		}
		off, n := int(r.u32()), int(r.u32())
		if r.err != nil || off+n > len(strs) {
			return units.UString{}, fmt.Errorf("%w: string payload range", ErrCorrupt)
		}
		return units.UString{Iv: iv, V: string(strs[off : off+n])}, nil
	})
	if err != nil {
		return moving.MString{}, err
	}
	return moving.NewMString(us...)
}

// EncodeMReal stores a moving real: fixed-size (interval, a, b, c, root)
// records.
func EncodeMReal(m moving.MReal) Encoded {
	var root, arr writer
	root.u32(uint32(m.M.Len()))
	for _, u := range m.M.Units() {
		writeInterval(&arr, u.Iv)
		arr.f64(u.A)
		arr.f64(u.B)
		arr.f64(u.C)
		arr.boolv(u.Root)
	}
	return Encoded{Root: root.buf, Arrays: [][]byte{arr.buf}}
}

// DecodeMReal reverses EncodeMReal.
func DecodeMReal(e Encoded) (moving.MReal, error) {
	us, err := decodeUnits(e, func(r *reader) (units.UReal, error) {
		iv, err := readInterval(r)
		if err != nil {
			return units.UReal{}, err
		}
		return units.UReal{Iv: iv, A: r.f64(), B: r.f64(), C: r.f64(), Root: r.boolv()}, nil
	})
	if err != nil {
		return moving.MReal{}, err
	}
	return moving.NewMReal(us...)
}

// EncodeMPoint stores a moving point: fixed-size
// (interval, x0, x1, y0, y1) records.
func EncodeMPoint(m moving.MPoint) Encoded {
	var root, arr writer
	root.u32(uint32(m.M.Len()))
	for _, u := range m.M.Units() {
		writeInterval(&arr, u.Iv)
		arr.f64(u.M.X0)
		arr.f64(u.M.X1)
		arr.f64(u.M.Y0)
		arr.f64(u.M.Y1)
	}
	return Encoded{Root: root.buf, Arrays: [][]byte{arr.buf}}
}

// DecodeMPoint reverses EncodeMPoint.
func DecodeMPoint(e Encoded) (moving.MPoint, error) {
	us, err := decodeUnits(e, func(r *reader) (units.UPoint, error) {
		iv, err := readInterval(r)
		if err != nil {
			return units.UPoint{}, err
		}
		return units.UPoint{Iv: iv, M: units.MPoint{X0: r.f64(), X1: r.f64(), Y0: r.f64(), Y1: r.f64()}}, nil
	})
	if err != nil {
		return moving.MPoint{}, err
	}
	return moving.NewMPoint(us...)
}

// decodeUnits reads the unit count from the root record and applies the
// per-unit reader to the (first) units array.
func decodeUnits[U any](e Encoded, read func(*reader) (U, error)) ([]U, error) {
	if len(e.Arrays) != 1 {
		return nil, fmt.Errorf("%w: mapping needs 1 units array", ErrCorrupt)
	}
	root := reader{buf: e.Root}
	n := int(root.u32())
	if err := root.done(); err != nil {
		return nil, err
	}
	arr := reader{buf: e.Arrays[0]}
	// Unit records are at least an interval (18 bytes); reject counts
	// the array cannot possibly hold before allocating.
	const minUnitRec = 8 + 8 + 1 + 1
	if n > len(arr.buf)/minUnitRec {
		return nil, fmt.Errorf("%w: unit count %d exceeds array capacity", ErrCorrupt, n)
	}
	us := make([]U, 0, n)
	for i := 0; i < n; i++ {
		u, err := read(&arr)
		if err != nil {
			return nil, err
		}
		if arr.err != nil {
			return nil, arr.err
		}
		us = append(us, u)
	}
	if err := arr.done(); err != nil {
		return nil, err
	}
	return us, nil
}

// --- variable size units: mpoints / mregion (Figure 7 layout) ---

func writeMPointRec(w *writer, m units.MPoint) {
	w.f64(m.X0)
	w.f64(m.X1)
	w.f64(m.Y0)
	w.f64(m.Y1)
}

func readMPointRec(r *reader) units.MPoint {
	return units.MPoint{X0: r.f64(), X1: r.f64(), Y0: r.f64(), Y1: r.f64()}
}

// EncodeMPoints stores a moving point set: the units array holds
// (interval, start, end) records whose indices reference the shared
// subarray of MPoint records — the exact structure of Figure 7.
func EncodeMPoints(m moving.MPoints) Encoded {
	var root, unitsArr, sub writer
	root.u32(uint32(m.M.Len()))
	off := 0
	for _, u := range m.M.Units() {
		writeInterval(&unitsArr, u.Iv)
		unitsArr.u32(uint32(off))
		unitsArr.u32(uint32(off + len(u.Ms)))
		for _, mp := range u.Ms {
			writeMPointRec(&sub, mp)
		}
		off += len(u.Ms)
	}
	return Encoded{Root: root.buf, Arrays: [][]byte{unitsArr.buf, sub.buf}}
}

// DecodeMPoints reverses EncodeMPoints, re-validating unit constraints.
func DecodeMPoints(e Encoded) (moving.MPoints, error) {
	if len(e.Arrays) != 2 {
		return moving.MPoints{}, fmt.Errorf("%w: mpoints needs 2 arrays", ErrCorrupt)
	}
	subR := reader{buf: e.Arrays[1]}
	var pool []units.MPoint
	for subR.off < len(subR.buf) {
		pool = append(pool, readMPointRec(&subR))
	}
	if err := subR.done(); err != nil {
		return moving.MPoints{}, err
	}
	us, err := decodeUnits(Encoded{Root: e.Root, Arrays: e.Arrays[:1]}, func(r *reader) (units.UPoints, error) {
		iv, err := readInterval(r)
		if err != nil {
			return units.UPoints{}, err
		}
		lo, hi := int(r.u32()), int(r.u32())
		if r.err != nil || lo > hi || hi > len(pool) {
			return units.UPoints{}, fmt.Errorf("%w: subarray range [%d,%d)", ErrCorrupt, lo, hi)
		}
		return units.NewUPoints(iv, pool[lo:hi]...)
	})
	if err != nil {
		return moving.MPoints{}, err
	}
	return moving.NewMPoints(us...)
}

// EncodeMRegion stores a moving region with the subarrays of
// Section 4.2: msegments (as moving ring vertices), mcycles and mfaces.
// Unit records reference their face run; face records reference their
// cycle run; cycle records reference their vertex run — indices
// throughout, no pointers.
func EncodeMRegion(m moving.MRegion) Encoded {
	var root, unitsArr, mfaces, mcycles, mverts writer
	root.u32(uint32(m.M.Len()))
	faceIdx, cycIdx, vertIdx := 0, 0, 0
	writeCycle := func(c units.MCycle) {
		mcycles.u32(uint32(vertIdx))
		mcycles.u32(uint32(len(c)))
		for _, v := range c {
			writeMPointRec(&mverts, v)
		}
		vertIdx += len(c)
		cycIdx++
	}
	for _, u := range m.M.Units() {
		writeInterval(&unitsArr, u.Iv)
		unitsArr.u32(uint32(faceIdx))
		unitsArr.u32(uint32(faceIdx + len(u.Faces)))
		for _, f := range u.Faces {
			mfaces.u32(uint32(cycIdx))
			mfaces.u32(uint32(1 + len(f.Holes)))
			writeCycle(f.Outer)
			for _, h := range f.Holes {
				writeCycle(h)
			}
			faceIdx++
		}
	}
	return Encoded{Root: root.buf, Arrays: [][]byte{unitsArr.buf, mfaces.buf, mcycles.buf, mverts.buf}}
}

// DecodeMRegion reverses EncodeMRegion. Unit validity is re-checked
// structurally (rings, coplanarity); the full for-all-instants
// validation is not repeated on load — the stored value was validated
// when constructed, matching how a DBMS treats its own pages.
func DecodeMRegion(e Encoded) (moving.MRegion, error) {
	if len(e.Arrays) != 4 {
		return moving.MRegion{}, fmt.Errorf("%w: mregion needs 4 arrays", ErrCorrupt)
	}
	vertR := reader{buf: e.Arrays[3]}
	var verts []units.MPoint
	for vertR.off < len(vertR.buf) {
		verts = append(verts, readMPointRec(&vertR))
	}
	if err := vertR.done(); err != nil {
		return moving.MRegion{}, err
	}
	type cycRec struct{ off, n int }
	cycR := reader{buf: e.Arrays[2]}
	var cycles []cycRec
	for cycR.off < len(cycR.buf) {
		cycles = append(cycles, cycRec{int(cycR.u32()), int(cycR.u32())})
	}
	if err := cycR.done(); err != nil {
		return moving.MRegion{}, err
	}
	type faceRec struct{ first, n int }
	faceR := reader{buf: e.Arrays[1]}
	var faces []faceRec
	for faceR.off < len(faceR.buf) {
		faces = append(faces, faceRec{int(faceR.u32()), int(faceR.u32())})
	}
	if err := faceR.done(); err != nil {
		return moving.MRegion{}, err
	}
	mkCycle := func(c cycRec) (units.MCycle, error) {
		if c.off+c.n > len(verts) || c.n < 3 {
			return nil, fmt.Errorf("%w: mcycle vertex range", ErrCorrupt)
		}
		return units.MCycle(verts[c.off : c.off+c.n]), nil
	}
	us, err := decodeUnits(Encoded{Root: e.Root, Arrays: e.Arrays[:1]}, func(r *reader) (units.URegion, error) {
		iv, err := readInterval(r)
		if err != nil {
			return units.URegion{}, err
		}
		lo, hi := int(r.u32()), int(r.u32())
		if r.err != nil || lo > hi || hi > len(faces) {
			return units.URegion{}, fmt.Errorf("%w: face range", ErrCorrupt)
		}
		mfs := make([]units.MFace, 0, hi-lo)
		for k := lo; k < hi; k++ {
			fr := faces[k]
			if fr.first+fr.n > len(cycles) || fr.n < 1 {
				return units.URegion{}, fmt.Errorf("%w: cycle range", ErrCorrupt)
			}
			outer, err := mkCycle(cycles[fr.first])
			if err != nil {
				return units.URegion{}, err
			}
			mf := units.MFace{Outer: outer}
			for c := fr.first + 1; c < fr.first+fr.n; c++ {
				h, err := mkCycle(cycles[c])
				if err != nil {
					return units.URegion{}, err
				}
				mf.Holes = append(mf.Holes, h)
			}
			mfs = append(mfs, mf)
		}
		return units.URegionUnchecked(iv, mfs), nil
	})
	if err != nil {
		return moving.MRegion{}, err
	}
	m2, err := mapping.New(us...)
	if err != nil {
		return moving.MRegion{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return moving.MRegion{M: m2}, nil
}
