package storage

import (
	"fmt"

	"movingdb/internal/geom"
	"movingdb/internal/spatial"
	"movingdb/internal/temporal"
)

// Encoded is the stored form of an attribute value: the fixed-size root
// record plus the database arrays it references. Arrays are kept
// separate so the tuple layer can decide inline vs external placement
// per array (Section 4: "database arrays are automatically either
// represented inline in a tuple representation, or outside in a separate
// list of pages, depending on their size").
type Encoded struct {
	Root   []byte
	Arrays [][]byte
}

// TotalSize returns the total number of bytes of root and arrays.
func (e Encoded) TotalSize() int {
	n := len(e.Root)
	for _, a := range e.Arrays {
		n += len(a)
	}
	return n
}

// Flatten concatenates root and arrays into one self-describing buffer
// (lengths prefixed), for callers that want a single blob.
func (e Encoded) Flatten() []byte {
	var w writer
	w.u32(uint32(len(e.Root)))
	w.buf = append(w.buf, e.Root...)
	w.u32(uint32(len(e.Arrays)))
	for _, a := range e.Arrays {
		w.u32(uint32(len(a)))
		w.buf = append(w.buf, a...)
	}
	return w.buf
}

// Unflatten reverses Flatten.
func Unflatten(buf []byte) (Encoded, error) {
	r := reader{buf: buf}
	rootLen := int(r.u32())
	if r.err != nil || r.off+rootLen > len(buf) {
		return Encoded{}, fmt.Errorf("%w: bad root length", ErrCorrupt)
	}
	root := buf[r.off : r.off+rootLen]
	r.off += rootLen
	n := int(r.u32())
	arrays := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		al := int(r.u32())
		if r.err != nil || r.off+al > len(buf) {
			return Encoded{}, fmt.Errorf("%w: bad array %d length", ErrCorrupt, i)
		}
		arrays = append(arrays, buf[r.off:r.off+al])
		r.off += al
	}
	if err := r.done(); err != nil {
		return Encoded{}, err
	}
	return Encoded{Root: root, Arrays: arrays}, nil
}

// --- point ---

// EncodePoint stores a point value: two reals plus a defined flag
// (Section 4.1). The representation has no arrays.
func EncodePoint(p spatial.Point) Encoded {
	var w writer
	w.boolv(p.Defined())
	w.f64(p.P.X)
	w.f64(p.P.Y)
	return Encoded{Root: w.buf}
}

// DecodePoint reverses EncodePoint.
func DecodePoint(e Encoded) (spatial.Point, error) {
	r := reader{buf: e.Root}
	def := r.boolv()
	x, y := r.f64(), r.f64()
	if err := r.done(); err != nil {
		return spatial.Point{}, err
	}
	if !def {
		return spatial.UndefPoint(), nil
	}
	return spatial.DefPoint(geom.Pt(x, y)), nil
}

// --- points ---

// EncodePoints stores a point set: the root record holds the count, the
// single array the lexicographically ordered point records.
func EncodePoints(ps spatial.Points) Encoded {
	var root, arr writer
	root.u32(uint32(ps.Len()))
	for _, p := range ps.Slice() {
		arr.f64(p.X)
		arr.f64(p.Y)
	}
	return Encoded{Root: root.buf, Arrays: [][]byte{arr.buf}}
}

// DecodePoints reverses EncodePoints, re-validating canonical order.
func DecodePoints(e Encoded) (spatial.Points, error) {
	if len(e.Arrays) != 1 {
		return spatial.Points{}, fmt.Errorf("%w: points needs 1 array", ErrCorrupt)
	}
	root := reader{buf: e.Root}
	n := int(root.u32())
	if err := root.done(); err != nil {
		return spatial.Points{}, err
	}
	arr := reader{buf: e.Arrays[0]}
	if n != len(arr.buf)/16 {
		return spatial.Points{}, fmt.Errorf("%w: point count %d does not match array size", ErrCorrupt, n)
	}
	pts := make([]geom.Point, 0, n)
	for i := 0; i < n && arr.err == nil; i++ {
		pts = append(pts, geom.Pt(arr.f64(), arr.f64()))
	}
	if err := arr.done(); err != nil {
		return spatial.Points{}, err
	}
	out := spatial.NewPoints(pts...)
	if out.Len() != n {
		return spatial.Points{}, fmt.Errorf("%w: points not canonical", ErrCorrupt)
	}
	return out, nil
}

// --- halfsegments (shared by line and region) ---

func writeHalfSegment(w *writer, h geom.HalfSegment) {
	w.f64(h.Seg.Left.X)
	w.f64(h.Seg.Left.Y)
	w.f64(h.Seg.Right.X)
	w.f64(h.Seg.Right.Y)
	w.boolv(h.LeftDom)
}

func readHalfSegment(r *reader) (geom.HalfSegment, error) {
	lx, ly := r.f64(), r.f64()
	rx, ry := r.f64(), r.f64()
	dom := r.boolv()
	if r.err != nil {
		return geom.HalfSegment{}, r.err
	}
	seg, err := geom.NewSegment(geom.Pt(lx, ly), geom.Pt(rx, ry))
	if err != nil {
		return geom.HalfSegment{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if seg.Left != geom.Pt(lx, ly) {
		return geom.HalfSegment{}, fmt.Errorf("%w: halfsegment endpoints not canonical", ErrCorrupt)
	}
	return geom.HalfSegment{Seg: seg, LeftDom: dom}, nil
}

// --- line ---

// EncodeLine stores a line value: the root record holds the segment
// count, total length and bounding box (the summary information of
// Section 4.1); the array holds the ordered halfsegment records.
func EncodeLine(l spatial.Line) Encoded {
	var root, arr writer
	root.u32(uint32(l.NumSegments()))
	root.f64(l.Length())
	bb := l.BBox()
	root.f64(bb.MinX)
	root.f64(bb.MinY)
	root.f64(bb.MaxX)
	root.f64(bb.MaxY)
	for _, h := range l.HalfSegments() {
		writeHalfSegment(&arr, h)
	}
	return Encoded{Root: root.buf, Arrays: [][]byte{arr.buf}}
}

// DecodeLine reverses EncodeLine and re-validates the halfsegment order
// and carrier set constraints.
func DecodeLine(e Encoded) (spatial.Line, error) {
	if len(e.Arrays) != 1 {
		return spatial.Line{}, fmt.Errorf("%w: line needs 1 array", ErrCorrupt)
	}
	root := reader{buf: e.Root}
	n := int(root.u32())
	_ = root.f64() // length (recomputed)
	for i := 0; i < 4; i++ {
		_ = root.f64() // bbox (recomputed)
	}
	if err := root.done(); err != nil {
		return spatial.Line{}, err
	}
	arr := reader{buf: e.Arrays[0]}
	const hsRecSize = 4*8 + 1
	if 2*n != len(arr.buf)/hsRecSize {
		return spatial.Line{}, fmt.Errorf("%w: halfsegment count %d does not match array size", ErrCorrupt, n)
	}
	segs := make([]geom.Segment, 0, n)
	for i := 0; i < 2*n; i++ {
		h, err := readHalfSegment(&arr)
		if err != nil {
			return spatial.Line{}, err
		}
		if h.LeftDom {
			segs = append(segs, h.Seg)
		}
	}
	if err := arr.done(); err != nil {
		return spatial.Line{}, err
	}
	l, err := spatial.NewLine(segs...)
	if err != nil {
		return spatial.Line{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return l, nil
}

// --- region ---

// EncodeRegion stores a region value with the three arrays of
// Section 4.1: halfsegments (ordered, for sweeps and equality), cycles
// and faces. The structural arrays use integer indices in place of
// pointers: each cycle record points at the start of its vertex run in a
// fourth array of ring vertices (rings are stored explicitly, which
// takes the role of the next-in-cycle chaining of halfsegment records),
// and each face record points at its first cycle; cycles of one face are
// contiguous.
func EncodeRegion(rg spatial.Region) Encoded {
	var root, hsArr, cycArr, faceArr, ringArr writer

	// Root record: summary data (Section 4.1).
	root.u32(uint32(rg.NumFaces()))
	root.u32(uint32(rg.NumCycles()))
	root.u32(uint32(rg.NumSegments()))
	root.f64(rg.Area())
	root.f64(rg.Perimeter())
	bb := rg.BBox()
	root.f64(bb.MinX)
	root.f64(bb.MinY)
	root.f64(bb.MaxX)
	root.f64(bb.MaxY)

	for _, h := range rg.HalfSegments() {
		writeHalfSegment(&hsArr, h)
	}

	ringOff := 0
	cycleIdx := 0
	writeCycle := func(c spatial.Cycle, hole bool) {
		verts := c.Vertices()
		cycArr.u32(uint32(ringOff))
		cycArr.u32(uint32(len(verts)))
		cycArr.boolv(hole)
		for _, v := range verts {
			ringArr.f64(v.X)
			ringArr.f64(v.Y)
		}
		ringOff += len(verts)
		cycleIdx++
	}
	for _, f := range rg.Faces() {
		faceArr.u32(uint32(cycleIdx))         // first cycle of the face
		faceArr.u32(uint32(1 + len(f.Holes))) // number of cycles
		writeCycle(f.Outer, false)
		for _, h := range f.Holes {
			writeCycle(h, true)
		}
	}
	return Encoded{Root: root.buf, Arrays: [][]byte{hsArr.buf, cycArr.buf, faceArr.buf, ringArr.buf}}
}

// DecodeRegion reverses EncodeRegion. The face/cycle structure is
// rebuilt from the structural arrays; the halfsegment array is checked
// for consistency with the rebuilt value (it is the part sweeps and
// equality comparisons run on).
func DecodeRegion(e Encoded) (spatial.Region, error) {
	if len(e.Arrays) != 4 {
		return spatial.Region{}, fmt.Errorf("%w: region needs 4 arrays", ErrCorrupt)
	}
	root := reader{buf: e.Root}
	nFaces := int(root.u32())
	nCycles := int(root.u32())
	nSegs := int(root.u32())
	for i := 0; i < 6; i++ {
		_ = root.f64() // summary (recomputed)
	}
	if err := root.done(); err != nil {
		return spatial.Region{}, err
	}

	// Ring vertices.
	ringR := reader{buf: e.Arrays[3]}
	var ringPts []geom.Point
	for ringR.off < len(ringR.buf) {
		ringPts = append(ringPts, geom.Pt(ringR.f64(), ringR.f64()))
	}
	if err := ringR.done(); err != nil {
		return spatial.Region{}, err
	}

	// Cycles.
	type cycRec struct {
		off, n int
		hole   bool
	}
	cycR := reader{buf: e.Arrays[1]}
	const cycRecSize = 4 + 4 + 1
	if nCycles != len(cycR.buf)/cycRecSize {
		return spatial.Region{}, fmt.Errorf("%w: cycle count %d does not match array size", ErrCorrupt, nCycles)
	}
	cycles := make([]cycRec, 0, nCycles)
	for i := 0; i < nCycles && cycR.err == nil; i++ {
		cycles = append(cycles, cycRec{off: int(cycR.u32()), n: int(cycR.u32()), hole: cycR.boolv()})
	}
	if err := cycR.done(); err != nil {
		return spatial.Region{}, err
	}

	// Faces.
	faceR := reader{buf: e.Arrays[2]}
	if nFaces != len(faceR.buf)/8 {
		return spatial.Region{}, fmt.Errorf("%w: face count %d does not match array size", ErrCorrupt, nFaces)
	}
	faces := make([]spatial.Face, 0, nFaces)
	for i := 0; i < nFaces; i++ {
		first := int(faceR.u32())
		count := int(faceR.u32())
		if faceR.err != nil || first+count > len(cycles) || count < 1 {
			return spatial.Region{}, fmt.Errorf("%w: face %d cycle range", ErrCorrupt, i)
		}
		mk := func(c cycRec) (spatial.Cycle, error) {
			if c.off+c.n > len(ringPts) {
				return spatial.Cycle{}, fmt.Errorf("%w: ring range", ErrCorrupt)
			}
			return spatial.NewCycle(ringPts[c.off : c.off+c.n]...)
		}
		outer, err := mk(cycles[first])
		if err != nil || cycles[first].hole {
			return spatial.Region{}, fmt.Errorf("%w: face %d outer cycle: %v", ErrCorrupt, i, err)
		}
		holes := make([]spatial.Cycle, 0, count-1)
		for k := first + 1; k < first+count; k++ {
			h, err := mk(cycles[k])
			if err != nil || !cycles[k].hole {
				return spatial.Region{}, fmt.Errorf("%w: face %d hole cycle: %v", ErrCorrupt, i, err)
			}
			holes = append(holes, h)
		}
		f, err := spatial.NewFace(outer, holes...)
		if err != nil {
			return spatial.Region{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		faces = append(faces, f)
	}
	if err := faceR.done(); err != nil {
		return spatial.Region{}, err
	}
	rg, err := spatial.NewRegion(faces...)
	if err != nil {
		return spatial.Region{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	// Cross-check the halfsegment array against the rebuilt value.
	hsR := reader{buf: e.Arrays[0]}
	const hsRec = 4*8 + 1
	if 2*nSegs != len(hsR.buf)/hsRec || 2*nSegs != len(rg.HalfSegments()) {
		return spatial.Region{}, fmt.Errorf("%w: segment count %d inconsistent", ErrCorrupt, nSegs)
	}
	for i := 0; i < 2*nSegs; i++ {
		h, err := readHalfSegment(&hsR)
		if err != nil {
			return spatial.Region{}, err
		}
		if h != rg.HalfSegments()[i] {
			return spatial.Region{}, fmt.Errorf("%w: halfsegment array inconsistent at %d", ErrCorrupt, i)
		}
	}
	if err := hsR.done(); err != nil {
		return spatial.Region{}, err
	}
	return rg, nil
}

// --- intervals and periods ---

func writeInterval(w *writer, iv temporal.Interval) {
	w.f64(float64(iv.Start))
	w.f64(float64(iv.End))
	w.boolv(iv.LC)
	w.boolv(iv.RC)
}

func readInterval(r *reader) (temporal.Interval, error) {
	s, e := r.f64(), r.f64()
	lc, rc := r.boolv(), r.boolv()
	if r.err != nil {
		return temporal.Interval{}, r.err
	}
	iv, err := temporal.NewInterval(temporal.Instant(s), temporal.Instant(e), lc, rc)
	if err != nil {
		return temporal.Interval{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return iv, nil
}

// EncodePeriods stores a range(instant) value as the root count plus an
// array of ordered interval records.
func EncodePeriods(p temporal.Periods) Encoded {
	var root, arr writer
	root.u32(uint32(p.Len()))
	for _, iv := range p.Intervals() {
		writeInterval(&arr, iv)
	}
	return Encoded{Root: root.buf, Arrays: [][]byte{arr.buf}}
}

// DecodePeriods reverses EncodePeriods, re-validating canonicity.
func DecodePeriods(e Encoded) (temporal.Periods, error) {
	if len(e.Arrays) != 1 {
		return temporal.Periods{}, fmt.Errorf("%w: periods needs 1 array", ErrCorrupt)
	}
	root := reader{buf: e.Root}
	n := int(root.u32())
	if err := root.done(); err != nil {
		return temporal.Periods{}, err
	}
	arr := reader{buf: e.Arrays[0]}
	const ivRecSize = 8 + 8 + 1 + 1
	if n != len(arr.buf)/ivRecSize {
		return temporal.Periods{}, fmt.Errorf("%w: interval count %d does not match array size", ErrCorrupt, n)
	}
	ivs := make([]temporal.Interval, 0, n)
	for i := 0; i < n; i++ {
		iv, err := readInterval(&arr)
		if err != nil {
			return temporal.Periods{}, err
		}
		ivs = append(ivs, iv)
	}
	if err := arr.done(); err != nil {
		return temporal.Periods{}, err
	}
	p, err := temporal.NewPeriods(ivs...)
	if err != nil {
		return temporal.Periods{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if p.Len() != n {
		return temporal.Periods{}, fmt.Errorf("%w: periods not canonical", ErrCorrupt)
	}
	return p, nil
}
