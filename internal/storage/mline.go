package storage

import (
	"fmt"

	"movingdb/internal/moving"
	"movingdb/internal/units"
)

// EncodeMLine stores a moving line in the Figure 7 layout: the units
// array holds (interval, start, end) records referencing the shared
// subarray of MSeg records (pairs of MPoint records, in the canonical
// MSeg order of Section 4.2).
func EncodeMLine(m moving.MLine) Encoded {
	var root, unitsArr, sub writer
	root.u32(uint32(m.M.Len()))
	off := 0
	for _, u := range m.M.Units() {
		writeInterval(&unitsArr, u.Iv)
		unitsArr.u32(uint32(off))
		unitsArr.u32(uint32(off + len(u.Ms)))
		for _, g := range u.Ms {
			writeMPointRec(&sub, g.S)
			writeMPointRec(&sub, g.E)
		}
		off += len(u.Ms)
	}
	return Encoded{Root: root.buf, Arrays: [][]byte{unitsArr.buf, sub.buf}}
}

// DecodeMLine reverses EncodeMLine, re-validating the mapping
// constraints and the structural unit constraints (coplanarity); the
// full for-all-instants validation is not repeated on load, matching
// DecodeMRegion.
func DecodeMLine(e Encoded) (moving.MLine, error) {
	if len(e.Arrays) != 2 {
		return moving.MLine{}, fmt.Errorf("%w: mline needs 2 arrays", ErrCorrupt)
	}
	subR := reader{buf: e.Arrays[1]}
	var pool []units.MSeg
	for subR.off < len(subR.buf) {
		s := readMPointRec(&subR)
		t := readMPointRec(&subR)
		pool = append(pool, units.MSeg{S: s, E: t})
	}
	if err := subR.done(); err != nil {
		return moving.MLine{}, err
	}
	us, err := decodeUnits(Encoded{Root: e.Root, Arrays: e.Arrays[:1]}, func(r *reader) (units.ULine, error) {
		iv, err := readInterval(r)
		if err != nil {
			return units.ULine{}, err
		}
		lo, hi := int(r.u32()), int(r.u32())
		if r.err != nil || lo > hi || hi > len(pool) {
			return units.ULine{}, fmt.Errorf("%w: mline subarray range [%d,%d)", ErrCorrupt, lo, hi)
		}
		for _, g := range pool[lo:hi] {
			if g.S == g.E || !g.Coplanar() {
				return units.ULine{}, fmt.Errorf("%w: invalid moving segment in mline", ErrCorrupt)
			}
		}
		return units.ULineUnchecked(iv, pool[lo:hi]), nil
	})
	if err != nil {
		return moving.MLine{}, err
	}
	return moving.NewMLine(us...)
}
