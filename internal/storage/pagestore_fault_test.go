// Error-path coverage for the page store: failing writers during image
// serialisation, hostile inputs to the image readers, and the
// Compact/Recover operations the WAL's checkpointing and crash recovery
// are built on. Lives in package storage_test so it can drive WriteTo
// through the fault package's failing writer.
package storage_test

import (
	"bytes"
	"errors"
	"testing"

	"movingdb/internal/fault"
	"movingdb/internal/storage"
)

func TestWriteToFailingWriter(t *testing.T) {
	s := storage.NewPageStore()
	s.Put(bytes.Repeat([]byte{1}, 3*storage.PageSize))
	var full bytes.Buffer
	total, err := s.WriteTo(&full)
	if err != nil {
		t.Fatal(err)
	}
	// Fail at every interesting boundary: inside the header, at the
	// header/page seam, inside a page, at a page seam, and right before
	// the end.
	for _, budget := range []int{0, 5, 12, 100, 12 + storage.PageSize, int(total) - 1} {
		var buf bytes.Buffer
		n, err := s.WriteTo(&fault.Writer{W: &buf, FailAfter: budget})
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("budget %d: want injected error, got %v", budget, err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("budget %d: WriteTo reported %d bytes, writer saw %d", budget, n, buf.Len())
		}
		if n > int64(budget) {
			t.Fatalf("budget %d: wrote %d bytes past the failure", budget, n)
		}
		if !bytes.Equal(buf.Bytes(), full.Bytes()[:buf.Len()]) {
			t.Fatalf("budget %d: partial image is not a prefix of the full image", budget)
		}
	}
}

func TestReadPageStoreHostileInputs(t *testing.T) {
	for name, img := range map[string][]byte{
		"empty":        {},
		"short header": {0x53, 0x47},
		"garbage":      bytes.Repeat([]byte{0xA5}, 64),
	} {
		if _, err := storage.ReadPageStore(bytes.NewReader(img)); !errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("%s: want ErrCorrupt, got %v", name, err)
		}
	}
	// A header claiming more pages than the stream holds.
	s := storage.NewPageStore()
	s.Put(bytes.Repeat([]byte{7}, 2*storage.PageSize))
	var img bytes.Buffer
	if _, err := s.WriteTo(&img); err != nil {
		t.Fatal(err)
	}
	truncated := img.Bytes()[:img.Len()-storage.PageSize/2]
	if _, err := storage.ReadPageStore(bytes.NewReader(truncated)); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("truncated image: want ErrCorrupt, got %v", err)
	}
}

func TestRecoverPageStoreSalvagesPrefix(t *testing.T) {
	s := storage.NewPageStore()
	s.Put(bytes.Repeat([]byte{3}, 3*storage.PageSize))
	var img bytes.Buffer
	if _, err := s.WriteTo(&img); err != nil {
		t.Fatal(err)
	}
	raw := img.Bytes()
	// Mid-page cut: two whole pages survive, one page lost.
	ps, lost, err := storage.RecoverPageStore(bytes.NewReader(raw[:12+2*storage.PageSize+100]))
	if err != nil || ps.NumPages() != 2 || lost != 1 {
		t.Fatalf("mid-page cut: pages=%d lost=%d err=%v", ps.NumPages(), lost, err)
	}
	// Header-only and sub-header cuts: empty store, nothing lost vs
	// claimed-but-absent pages respectively.
	ps, lost, err = storage.RecoverPageStore(bytes.NewReader(raw[:5]))
	if err != nil || ps.NumPages() != 0 || lost != 0 {
		t.Fatalf("sub-header cut: pages=%d lost=%d err=%v", ps.NumPages(), lost, err)
	}
	ps, lost, err = storage.RecoverPageStore(bytes.NewReader(raw[:12]))
	if err != nil || ps.NumPages() != 0 || lost != 3 {
		t.Fatalf("header-only cut: pages=%d lost=%d err=%v", ps.NumPages(), lost, err)
	}
	// Foreign bytes are the one hard error: recovery must not guess.
	if _, _, err := storage.RecoverPageStore(bytes.NewReader(bytes.Repeat([]byte{0xEE}, 64))); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("foreign format: want ErrCorrupt, got %v", err)
	}
	// A corrupt page count (huge) must not overflow the loss counter.
	huge := append([]byte(nil), raw[:12]...)
	for i := 4; i < 12; i++ {
		huge[i] = 0xFF
	}
	if _, lost, err := storage.RecoverPageStore(bytes.NewReader(huge)); err != nil || lost < 0 {
		t.Fatalf("huge claimed count: lost=%d err=%v", lost, err)
	}
}

func TestCompact(t *testing.T) {
	s := storage.NewPageStore()
	for i := byte(0); i < 4; i++ {
		s.Put(bytes.Repeat([]byte{i + 1}, storage.PageSize))
	}
	s.Compact(2)
	if s.NumPages() != 2 {
		t.Fatalf("pages after compact: %d", s.NumPages())
	}
	// The remainder is renumbered down to page 0.
	got, err := s.Get(storage.LOBRef{FirstPage: 0, Length: storage.PageSize})
	if err != nil || got[0] != 3 {
		t.Fatalf("page 0 after compact holds %d (err=%v), want the old page 2", got[0], err)
	}
	// Degenerate arguments: no-ops or clamp to empty.
	s.Compact(0)
	s.Compact(-5)
	if s.NumPages() != 2 {
		t.Fatalf("no-op compact changed pages: %d", s.NumPages())
	}
	s.Compact(99)
	if s.NumPages() != 0 {
		t.Fatalf("over-compact left %d pages", s.NumPages())
	}
}
