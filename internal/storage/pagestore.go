package storage

import (
	"encoding/binary"
	"fmt"
	"io"
)

// PageSize is the unit of space management in the page store, matching
// common DBMS page sizes.
const PageSize = 4096

// PageStore simulates the DBMS buffer/LOB manager the paper's data
// structures are designed for: values are placed "under control of the
// DBMS into memory", so representations must consist of a small number
// of memory blocks that can be moved efficiently between secondary and
// main memory. Large objects are stored as runs of whole pages;
// statistics expose how many pages a read touches.
type PageStore struct {
	pages [][]byte
	// Stats.
	PagesWritten int
	PagesRead    int
}

// NewPageStore returns an empty page store.
func NewPageStore() *PageStore { return &PageStore{} }

// LOBRef identifies a large object: its first page and byte length. Page
// runs are contiguous, so a ref is two integers — index arithmetic, no
// pointers.
type LOBRef struct {
	FirstPage int
	Length    int
}

// NumPages returns the number of pages the object occupies.
func (r LOBRef) NumPages() int { return (r.Length + PageSize - 1) / PageSize }

// Put stores data as a new large object on fresh pages.
func (s *PageStore) Put(data []byte) LOBRef {
	ref := LOBRef{FirstPage: len(s.pages), Length: len(data)}
	for off := 0; off < len(data); off += PageSize {
		end := min(off+PageSize, len(data))
		page := make([]byte, PageSize)
		copy(page, data[off:end])
		s.pages = append(s.pages, page)
		s.PagesWritten++
	}
	if len(data) == 0 {
		// Zero-length objects still get a ref but no pages.
		ref.FirstPage = -1
	}
	return ref
}

// Get reads a large object back.
func (s *PageStore) Get(ref LOBRef) ([]byte, error) {
	if ref.Length == 0 {
		return nil, nil
	}
	n := ref.NumPages()
	if ref.FirstPage < 0 || ref.FirstPage+n > len(s.pages) {
		return nil, fmt.Errorf("%w: LOB ref out of range", ErrCorrupt)
	}
	out := make([]byte, 0, ref.Length)
	for i := 0; i < n; i++ {
		s.PagesRead++
		page := s.pages[ref.FirstPage+i]
		take := min(PageSize, ref.Length-len(out))
		out = append(out, page[:take]...)
	}
	return out, nil
}

// NumPages returns the total number of allocated pages.
func (s *PageStore) NumPages() int { return len(s.pages) }

// Truncate drops every page from n on. WAL recovery uses it to discard
// a torn tail so subsequent appends are reachable by the next scan.
func (s *PageStore) Truncate(n int) {
	if n >= 0 && n < len(s.pages) {
		s.pages = s.pages[:n]
	}
}

// Compact drops the first n pages, renumbering the remainder down to
// start at page 0. It is the in-memory stand-in for the
// write-new-segment-then-rename idiom a file-backed log uses to shrink
// its head atomically: the operation either happens entirely or not at
// all, never leaving a half-moved prefix. It is only meaningful for
// stores whose refs are re-derived by scanning (such as the ingestion
// WAL); LOBRefs held elsewhere are invalidated by the renumbering.
func (s *PageStore) Compact(n int) {
	if n <= 0 {
		return
	}
	if n > len(s.pages) {
		n = len(s.pages)
	}
	s.pages = append([][]byte(nil), s.pages[n:]...)
}

// pageStoreMagic identifies a serialised page store image.
const pageStoreMagic = 0x4D504753 // "MPGS"

// WriteTo serialises the page store — magic, page count, raw pages —
// producing the "disk image" of the simulated buffer manager, so state
// built on the store (such as the ingestion WAL) genuinely survives a
// process restart. Statistics counters are not persisted.
func (s *PageStore) WriteTo(w io.Writer) (int64, error) {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], pageStoreMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(s.pages)))
	n, err := w.Write(hdr[:])
	written := int64(n)
	if err != nil {
		return written, err
	}
	for _, p := range s.pages {
		n, err := w.Write(p)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadPageStore reverses WriteTo.
func ReadPageStore(r io.Reader) (*PageStore, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: page store header: %v", ErrCorrupt, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != pageStoreMagic {
		return nil, fmt.Errorf("%w: not a page store image", ErrCorrupt)
	}
	count := binary.LittleEndian.Uint64(hdr[4:])
	s := NewPageStore()
	for i := uint64(0); i < count; i++ {
		page := make([]byte, PageSize)
		if _, err := io.ReadFull(r, page); err != nil {
			return nil, fmt.Errorf("%w: page %d: %v", ErrCorrupt, i, err)
		}
		s.pages = append(s.pages, page)
	}
	return s, nil
}

// RecoverPageStore is the crash-tolerant image loader: where
// ReadPageStore rejects any truncation, this reads as much of the image
// as survived. A header too short to parse yields an empty store; a
// partial final page is discarded as a torn write; a page count larger
// than the bytes present keeps exactly the whole pages read. Only a
// foreign format (wrong magic) is an error — truncation is a crash
// artifact the WAL layer recovers from, a different format is not. The
// second result is the number of claimed pages that were lost.
func RecoverPageStore(r io.Reader) (*PageStore, int, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return NewPageStore(), 0, nil
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != pageStoreMagic {
		return nil, 0, fmt.Errorf("%w: not a page store image", ErrCorrupt)
	}
	count := binary.LittleEndian.Uint64(hdr[4:])
	s := NewPageStore()
	for i := uint64(0); i < count; i++ {
		page := make([]byte, PageSize)
		if _, err := io.ReadFull(r, page); err != nil {
			break // torn: whole pages up to here survive
		}
		s.pages = append(s.pages, page)
	}
	lost := count - uint64(len(s.pages))
	if lost > 1<<31 {
		lost = 1 << 31 // a corrupt claimed count; the real loss is unknowable
	}
	return s, int(lost), nil
}

// InlineThreshold is the array size up to which arrays are stored inline
// in the tuple; larger arrays go to the page store (the FLOB policy of
// [DG98] the paper references).
const InlineThreshold = 256

// StoredValue is the tuple-level representation of one attribute value:
// the root record and small arrays inline, large arrays as LOB
// references.
type StoredValue struct {
	Root   []byte
	Inline [][]byte // nil entry when the array is external
	Refs   []LOBRef // valid where Inline[i] == nil
}

// InlineSize returns the number of bytes this value occupies inside the
// tuple.
func (v StoredValue) InlineSize() int {
	n := len(v.Root)
	for _, a := range v.Inline {
		n += len(a)
	}
	n += 16 * len(v.Refs) // ref slots
	return n
}

// ExternalPages returns the number of pages occupied outside the tuple.
func (v StoredValue) ExternalPages() int {
	n := 0
	for i, inl := range v.Inline {
		if inl == nil {
			n += v.Refs[i].NumPages()
		}
	}
	return n
}

// Store places an encoded value into the tuple/LOB split: arrays up to
// InlineThreshold bytes stay inline, larger ones move to the page store.
func Store(ps *PageStore, e Encoded) StoredValue {
	v := StoredValue{
		Root:   append([]byte(nil), e.Root...),
		Inline: make([][]byte, len(e.Arrays)),
		Refs:   make([]LOBRef, len(e.Arrays)),
	}
	for i, a := range e.Arrays {
		if len(a) <= InlineThreshold {
			v.Inline[i] = append([]byte(nil), a...)
		} else {
			v.Refs[i] = ps.Put(a)
		}
	}
	return v
}

// Load reassembles the encoded value, reading external arrays from the
// page store.
func Load(ps *PageStore, v StoredValue) (Encoded, error) {
	e := Encoded{Root: v.Root, Arrays: make([][]byte, len(v.Inline))}
	for i, inl := range v.Inline {
		if inl != nil {
			e.Arrays[i] = inl
			continue
		}
		a, err := ps.Get(v.Refs[i])
		if err != nil {
			return Encoded{}, err
		}
		e.Arrays[i] = a
	}
	return e, nil
}
