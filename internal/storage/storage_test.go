package storage

import (
	"bytes"
	"errors"
	"testing"

	"movingdb/internal/geom"
	"movingdb/internal/moving"
	"movingdb/internal/spatial"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
)

func iv(s, e float64) temporal.Interval {
	return temporal.Closed(temporal.Instant(s), temporal.Instant(e))
}

func rho(s, e float64) temporal.Interval {
	return temporal.RightHalfOpen(temporal.Instant(s), temporal.Instant(e))
}

func TestPointRoundTrip(t *testing.T) {
	for _, p := range []spatial.Point{spatial.DefPoint(geom.Pt(1.5, -2.25)), spatial.UndefPoint()} {
		e := EncodePoint(p)
		got, err := DecodePoint(e)
		if err != nil {
			t.Fatal(err)
		}
		if got != p {
			t.Errorf("round trip: %v != %v", got, p)
		}
	}
}

func TestPointsRoundTrip(t *testing.T) {
	ps := spatial.NewPoints(geom.Pt(3, 1), geom.Pt(-1, 2), geom.Pt(0, 0))
	e := EncodePoints(ps)
	got, err := DecodePoints(e)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ps) {
		t.Errorf("round trip: %v != %v", got, ps)
	}
	// Representation equality: identical values encode identically.
	e2 := EncodePoints(spatial.NewPoints(geom.Pt(0, 0), geom.Pt(-1, 2), geom.Pt(3, 1)))
	if !bytes.Equal(e.Flatten(), e2.Flatten()) {
		t.Error("canonical order violated: same set, different bytes")
	}
}

func TestLineRoundTrip(t *testing.T) {
	l := spatial.MustLine(geom.Seg(0, 0, 2, 2), geom.Seg(0, 2, 2, 0), geom.Seg(5, 5, 6, 5))
	e := EncodeLine(l)
	got, err := DecodeLine(e)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(l) {
		t.Errorf("round trip failed")
	}
	if got.Length() != l.Length() || got.BBox() != l.BBox() {
		t.Error("summary data differs after round trip")
	}
	// Empty line.
	var empty spatial.Line
	got, err = DecodeLine(EncodeLine(empty))
	if err != nil || !got.IsEmpty() {
		t.Errorf("empty line round trip: %v, %v", got, err)
	}
}

func TestRegionRoundTrip(t *testing.T) {
	r := spatial.MustPolygonRegion(
		spatial.Ring(0, 0, 10, 0, 10, 10, 0, 10),
		spatial.Ring(2, 2, 4, 2, 4, 4, 2, 4),
		spatial.Ring(6, 6, 8, 6, 8, 8, 6, 8),
	)
	e := EncodeRegion(r)
	if len(e.Arrays) != 4 {
		t.Fatalf("region arrays = %d", len(e.Arrays))
	}
	got, err := DecodeRegion(e)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r) {
		t.Errorf("round trip failed:\n%v\n%v", got, r)
	}
	if got.Area() != r.Area() || got.NumCycles() != 3 {
		t.Error("summary mismatch")
	}
}

func TestRegionMultiFaceRoundTrip(t *testing.T) {
	f1 := spatial.MustFace(spatial.MustCycle(spatial.Ring(0, 0, 4, 0, 4, 4, 0, 4)...))
	f2 := spatial.MustFace(
		spatial.MustCycle(spatial.Ring(10, 10, 20, 10, 20, 20, 10, 20)...),
		spatial.MustCycle(spatial.Ring(12, 12, 14, 12, 14, 14, 12, 14)...),
	)
	r := spatial.MustRegion(f1, f2)
	got, err := DecodeRegion(EncodeRegion(r))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r) {
		t.Error("multi-face round trip failed")
	}
}

func TestRegionDecodeRejectsCorruption(t *testing.T) {
	r := spatial.MustPolygonRegion(spatial.Ring(0, 0, 4, 0, 4, 4, 0, 4))
	e := EncodeRegion(r)
	// Flip a halfsegment coordinate: consistency check must fire.
	bad := Encoded{Root: e.Root, Arrays: [][]byte{append([]byte(nil), e.Arrays[0]...), e.Arrays[1], e.Arrays[2], e.Arrays[3]}}
	bad.Arrays[0][3] ^= 0xFF
	if _, err := DecodeRegion(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupted halfsegments accepted: %v", err)
	}
	// Truncated root.
	if _, err := DecodeRegion(Encoded{Root: e.Root[:3], Arrays: e.Arrays}); !errors.Is(err, ErrCorrupt) {
		t.Error("truncated root accepted")
	}
}

func TestPeriodsRoundTrip(t *testing.T) {
	p := temporal.MustPeriods(rho(0, 2), iv(5, 9))
	got, err := DecodePeriods(EncodePeriods(p))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Errorf("round trip: %v != %v", got, p)
	}
	// Non-canonical bytes are rejected.
	var arr writer
	writeInterval(&arr, iv(0, 2))
	writeInterval(&arr, iv(1, 3)) // overlaps
	var root writer
	root.u32(2)
	if _, err := DecodePeriods(Encoded{Root: root.buf, Arrays: [][]byte{arr.buf}}); !errors.Is(err, ErrCorrupt) {
		t.Error("non-canonical periods accepted")
	}
}

func TestMBoolMIntMStringRoundTrip(t *testing.T) {
	mb := moving.MustMBool(units.UBool{Iv: rho(0, 5), V: true}, units.UBool{Iv: rho(5, 9), V: false})
	gotB, err := DecodeMBool(EncodeMBool(mb))
	if err != nil {
		t.Fatal(err)
	}
	if gotB.M.Len() != 2 || !gotB.AtInstant(1).MustGet() || gotB.AtInstant(6).MustGet() {
		t.Error("mbool round trip failed")
	}

	mi := moving.MustMInt(units.UInt{Iv: rho(0, 5), V: 42}, units.UInt{Iv: rho(5, 9), V: -7})
	gotI, err := DecodeMInt(EncodeMInt(mi))
	if err != nil {
		t.Fatal(err)
	}
	if gotI.AtInstant(6).MustGet() != -7 {
		t.Error("mint round trip failed")
	}

	ms, err := moving.NewMString(units.UString{Iv: rho(0, 5), V: "boarding"}, units.UString{Iv: rho(5, 9), V: "airborne"})
	if err != nil {
		t.Fatal(err)
	}
	gotS, err := DecodeMString(EncodeMString(ms))
	if err != nil {
		t.Fatal(err)
	}
	if gotS.AtInstant(7).MustGet() != "airborne" {
		t.Error("mstring round trip failed")
	}
}

func TestMRealMPointRoundTrip(t *testing.T) {
	mr := moving.MustMReal(
		units.NewUReal(rho(0, 5), 1, -2, 3, false),
		units.NewUReal(iv(5, 9), 0, 0, 16, true),
	)
	got, err := DecodeMReal(EncodeMReal(mr))
	if err != nil {
		t.Fatal(err)
	}
	if got.AtInstant(7).MustGet() != 4 {
		t.Error("mreal round trip failed")
	}

	mp, err := moving.MPointFromSamples([]moving.Sample{
		{T: 0, P: geom.Pt(0, 0)}, {T: 10, P: geom.Pt(10, 0)}, {T: 20, P: geom.Pt(10, 10)},
	})
	if err != nil {
		t.Fatal(err)
	}
	gotP, err := DecodeMPoint(EncodeMPoint(mp))
	if err != nil {
		t.Fatal(err)
	}
	if gotP.M.Len() != 2 || gotP.AtInstant(15).P != geom.Pt(10, 5) {
		t.Error("mpoint round trip failed")
	}
}

func TestMPointsRoundTripFigure7(t *testing.T) {
	a := units.MPoint{X0: 0, X1: 1, Y0: 0, Y1: 0}
	b := units.MPoint{X0: 0, X1: 1, Y0: 5, Y1: 0}
	c := units.MPoint{X0: 9, X1: 0, Y0: 9, Y1: 0}
	m := moving.MustMPoints(
		units.MustUPoints(rho(0, 5), a, b),
		units.MustUPoints(iv(5, 9), a, b, c),
	)
	e := EncodeMPoints(m)
	// Figure 7: one units array plus one shared subarray.
	if len(e.Arrays) != 2 {
		t.Fatalf("arrays = %d", len(e.Arrays))
	}
	got, err := DecodeMPoints(e)
	if err != nil {
		t.Fatal(err)
	}
	ps, ok := got.AtInstant(7)
	if !ok || ps.Len() != 3 {
		t.Errorf("round trip AtInstant = %v, %v", ps, ok)
	}
}

func TestMRegionRoundTrip(t *testing.T) {
	ring := []geom.Point{geom.Pt(0, 0), geom.Pt(8, 0), geom.Pt(8, 8), geom.Pt(0, 8)}
	hole := []geom.Point{geom.Pt(2, 2), geom.Pt(4, 2), geom.Pt(4, 4), geom.Pt(2, 4)}
	mc := func(ring []geom.Point, vx float64) units.MCycle {
		var out units.MCycle
		for _, p := range ring {
			out = append(out, units.MPoint{X0: p.X, X1: vx, Y0: p.Y})
		}
		return out
	}
	m := moving.MustMRegion(
		units.MustURegion(rho(0, 5), units.MFace{Outer: mc(ring, 1), Holes: []units.MCycle{mc(hole, 1)}}),
		units.MustURegion(iv(5, 9), units.MFace{Outer: mc(ring, -1)}),
	)
	e := EncodeMRegion(m)
	if len(e.Arrays) != 4 {
		t.Fatalf("arrays = %d", len(e.Arrays))
	}
	got, err := DecodeMRegion(e)
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := got.AtInstant(2)
	if !ok || snap.NumCycles() != 2 {
		t.Fatalf("decoded snapshot = %v, %v", snap, ok)
	}
	if snap.Area() != 64-4 {
		t.Errorf("area = %v", snap.Area())
	}
	snap2, ok := got.AtInstant(7)
	if !ok || snap2.NumCycles() != 1 {
		t.Error("second unit lost")
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	r := spatial.MustPolygonRegion(spatial.Ring(0, 0, 4, 0, 4, 4, 0, 4))
	e := EncodeRegion(r)
	flat := e.Flatten()
	back, err := Unflatten(flat)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRegion(back)
	if err != nil || !got.Equal(r) {
		t.Errorf("flatten round trip failed: %v", err)
	}
	if _, err := Unflatten(flat[:5]); !errors.Is(err, ErrCorrupt) {
		t.Error("truncated flatten accepted")
	}
}

func TestEqualityByRepresentation(t *testing.T) {
	// Section 4: "two set values are equal iff their array
	// representations are equal".
	mk := func() moving.MPoint {
		p, err := moving.MPointFromSamples([]moving.Sample{
			{T: 0, P: geom.Pt(0, 0)}, {T: 10, P: geom.Pt(5, 5)}, {T: 20, P: geom.Pt(0, 10)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	e1 := EncodeMPoint(mk()).Flatten()
	e2 := EncodeMPoint(mk()).Flatten()
	if !bytes.Equal(e1, e2) {
		t.Error("equal values, different representations")
	}
}

func TestPageStoreAndFLOB(t *testing.T) {
	ps := NewPageStore()
	big := make([]byte, 3*PageSize+100)
	for i := range big {
		big[i] = byte(i)
	}
	ref := ps.Put(big)
	if ref.NumPages() != 4 {
		t.Errorf("pages = %d", ref.NumPages())
	}
	got, err := ps.Get(ref)
	if err != nil || !bytes.Equal(got, big) {
		t.Error("page store round trip failed")
	}
	if _, err := ps.Get(LOBRef{FirstPage: 100, Length: 10}); !errors.Is(err, ErrCorrupt) {
		t.Error("bad ref accepted")
	}

	// FLOB policy: small arrays inline, large external.
	small := EncodePoints(spatial.NewPoints(geom.Pt(1, 1)))
	sv := Store(ps, small)
	if sv.Inline[0] == nil {
		t.Error("small array not inline")
	}
	var pts []geom.Point
	for i := 0; i < 200; i++ {
		pts = append(pts, geom.Pt(float64(i), float64(i%7)))
	}
	large := EncodePoints(spatial.NewPoints(pts...))
	lv := Store(ps, large)
	if lv.Inline[0] != nil {
		t.Error("large array not external")
	}
	if lv.ExternalPages() == 0 {
		t.Error("no external pages recorded")
	}
	back, err := Load(ps, lv)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodePoints(back)
	if err != nil || decoded.Len() != 200 {
		t.Errorf("FLOB round trip: %v, %v", decoded.Len(), err)
	}
}

func TestStoredValueSizes(t *testing.T) {
	ps := NewPageStore()
	e := EncodePoints(spatial.NewPoints(geom.Pt(1, 1), geom.Pt(2, 2)))
	sv := Store(ps, e)
	if sv.InlineSize() <= 0 {
		t.Error("inline size not accounted")
	}
	if sv.ExternalPages() != 0 {
		t.Error("small value went external")
	}
}

func TestMLineRoundTrip(t *testing.T) {
	mk := func(px, py, qx, qy, vx, vy float64) units.MSeg {
		return units.MustMSeg(
			units.MPoint{X0: px, X1: vx, Y0: py, Y1: vy},
			units.MPoint{X0: qx, X1: vx, Y0: qy, Y1: vy},
		)
	}
	ml := moving.MustMLine(
		units.MustULine(rho(0, 5), mk(0, 0, 1, 0, 1, 0), mk(0, 3, 1, 3, 1, 0)),
		units.MustULine(iv(5, 9), mk(10, 10, 12, 10, 0, 1)),
	)
	e := EncodeMLine(ml)
	if len(e.Arrays) != 2 {
		t.Fatalf("arrays = %d", len(e.Arrays))
	}
	got, err := DecodeMLine(e)
	if err != nil {
		t.Fatal(err)
	}
	l, ok := got.AtInstant(2)
	if !ok || l.NumSegments() != 2 {
		t.Fatalf("decoded AtInstant = %v, %v", l, ok)
	}
	if !l.ContainsPoint(geom.Pt(2.5, 3)) {
		t.Error("translated segment wrong after round trip")
	}
	l2, ok := got.AtInstant(7)
	if !ok || l2.NumSegments() != 1 {
		t.Error("second unit lost")
	}
	// Corruption: make a moving segment rotate.
	bad := Encoded{Root: e.Root, Arrays: [][]byte{e.Arrays[0], append([]byte(nil), e.Arrays[1]...)}}
	// Corrupt the Y-velocity of one endpoint motion: the moving segment
	// now rotates, which the decoder's coplanarity check must reject.
	bad.Arrays[1][31] ^= 0x41 // exponent byte of S.Y1: a large rotation
	if _, err := DecodeMLine(bad); err == nil {
		t.Error("corrupted mline accepted")
	}
}

func TestDecodeNeverPanicsOnTruncation(t *testing.T) {
	// Failure injection: every decoder must reject truncated or
	// bit-flipped encodings with an error — never panic, never return
	// silently corrupted values that fail validation later.
	g := workloadValues(t)
	for name, enc := range g {
		flat := enc.Flatten()
		for cut := 0; cut < len(flat); cut += 1 + len(flat)/37 {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: panic on truncation at %d: %v", name, cut, r)
					}
				}()
				e, err := Unflatten(flat[:cut])
				if err != nil {
					return // rejected at the framing layer: fine
				}
				//molint:ignore err-drop hostile-input probe: an error is an acceptable outcome, only a panic fails the test
				_ = decodeAll(name, e)
			}()
		}
	}
}

// workloadValues builds one encoding per attribute type.
func workloadValues(t *testing.T) map[string]Encoded {
	t.Helper()
	mp, err := moving.MPointFromSamples([]moving.Sample{
		{T: 0, P: geom.Pt(0, 0)}, {T: 10, P: geom.Pt(5, 5)}, {T: 20, P: geom.Pt(0, 9)},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := spatial.MustPolygonRegion(spatial.Ring(0, 0, 8, 0, 8, 8, 0, 8), spatial.Ring(2, 2, 4, 2, 4, 4, 2, 4))
	a := units.MPoint{X0: 0, X1: 1}
	b := units.MPoint{X0: 0, X1: 1, Y0: 5}
	mps := moving.MustMPoints(units.MustUPoints(iv(0, 9), a, b))
	var mc units.MCycle
	for _, p := range spatial.Ring(0, 0, 8, 0, 8, 8, 0, 8) {
		mc = append(mc, units.MPoint{X0: p.X, X1: 1, Y0: p.Y})
	}
	mr := moving.MustMRegion(units.MustURegion(iv(0, 9), units.MFace{Outer: mc}))
	return map[string]Encoded{
		"points":  EncodePoints(spatial.NewPoints(geom.Pt(1, 2), geom.Pt(3, 4))),
		"line":    EncodeLine(spatial.MustLine(geom.Seg(0, 0, 1, 1), geom.Seg(2, 2, 3, 1))),
		"region":  EncodeRegion(reg),
		"periods": EncodePeriods(temporal.MustPeriods(iv(0, 2), iv(5, 7))),
		"mpoint":  EncodeMPoint(mp),
		"mpoints": EncodeMPoints(mps),
		"mregion": EncodeMRegion(mr),
		"mreal":   EncodeMReal(moving.MustMReal(units.NewUReal(iv(0, 5), 1, 2, 3, false))),
		"mbool":   EncodeMBool(moving.MustMBool(units.UBool{Iv: iv(0, 5), V: true})),
	}
}

// decodeAll dispatches one decode and reports its outcome; hostile-input
// tests only assert it returns instead of panicking.
func decodeAll(name string, e Encoded) error {
	var err error
	switch name {
	case "points":
		_, err = DecodePoints(e)
	case "line":
		_, err = DecodeLine(e)
	case "region":
		_, err = DecodeRegion(e)
	case "periods":
		_, err = DecodePeriods(e)
	case "mpoint":
		_, err = DecodeMPoint(e)
	case "mpoints":
		_, err = DecodeMPoints(e)
	case "mregion":
		_, err = DecodeMRegion(e)
	case "mreal":
		_, err = DecodeMReal(e)
	case "mbool":
		_, err = DecodeMBool(e)
	}
	return err
}

func TestDecodeSurvivesBitFlips(t *testing.T) {
	g := workloadValues(t)
	rng := []int{1, 7, 13, 29, 41}
	for name, enc := range g {
		flat := enc.Flatten()
		for _, k := range rng {
			mut := append([]byte(nil), flat...)
			mut[k%len(mut)] ^= 0xA5
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: panic on bit flip at %d: %v", name, k%len(mut), r)
					}
				}()
				e, err := Unflatten(mut)
				if err != nil {
					return
				}
				//molint:ignore err-drop hostile-input probe: an error is an acceptable outcome, only a panic fails the test
				_ = decodeAll(name, e)
			}()
		}
	}
}
