package storage

// Encodings for the base types: a single root record, no arrays
// (Section 4.1: "a record consisting of the given programming language
// value plus a boolean flag indicating whether the value is defined" —
// the engine layer stores only defined attribute values, so the flag is
// implied true here; undefined attributes are a tuple-level concern).

// EncodeString stores a string value.
func EncodeString(s string) Encoded {
	var w writer
	w.str(s)
	return Encoded{Root: w.buf}
}

// DecodeString reverses EncodeString.
func DecodeString(e Encoded) (string, error) {
	r := reader{buf: e.Root}
	s := r.str()
	if err := r.done(); err != nil {
		return "", err
	}
	return s, nil
}

// EncodeInt stores an int value.
func EncodeInt(v int64) Encoded {
	var w writer
	w.i64(v)
	return Encoded{Root: w.buf}
}

// DecodeInt reverses EncodeInt.
func DecodeInt(e Encoded) (int64, error) {
	r := reader{buf: e.Root}
	v := r.i64()
	if err := r.done(); err != nil {
		return 0, err
	}
	return v, nil
}

// EncodeReal stores a real value.
func EncodeReal(v float64) Encoded {
	var w writer
	w.f64(v)
	return Encoded{Root: w.buf}
}

// DecodeReal reverses EncodeReal.
func DecodeReal(e Encoded) (float64, error) {
	r := reader{buf: e.Root}
	v := r.f64()
	if err := r.done(); err != nil {
		return 0, err
	}
	return v, nil
}

// EncodeBool stores a bool value.
func EncodeBool(v bool) Encoded {
	var w writer
	w.boolv(v)
	return Encoded{Root: w.buf}
}

// DecodeBool reverses EncodeBool.
func DecodeBool(e Encoded) (bool, error) {
	r := reader{buf: e.Root}
	v := r.boolv()
	if err := r.done(); err != nil {
		return false, err
	}
	return v, nil
}
