package storage

import (
	"bytes"
	"testing"
)

func TestPageStoreSerialisationRoundTrip(t *testing.T) {
	s := NewPageStore()
	refs := []LOBRef{
		s.Put(bytes.Repeat([]byte{1}, 10)),
		s.Put(bytes.Repeat([]byte{2}, PageSize)),
		s.Put(bytes.Repeat([]byte{3}, PageSize+1)),
	}
	var img bytes.Buffer
	if _, err := s.WriteTo(&img); err != nil {
		t.Fatal(err)
	}
	r, err := ReadPageStore(bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumPages() != s.NumPages() {
		t.Fatalf("pages: %d != %d", r.NumPages(), s.NumPages())
	}
	for i, ref := range refs {
		want, err := s.Get(ref)
		if err != nil {
			t.Fatalf("source get %d: %v", i, err)
		}
		got, err := r.Get(ref)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("object %d differs after round trip (err=%v)", i, err)
		}
	}
}

func TestReadPageStoreRejectsCorruption(t *testing.T) {
	s := NewPageStore()
	s.Put(bytes.Repeat([]byte{9}, 2*PageSize))
	var img bytes.Buffer
	if _, err := s.WriteTo(&img); err != nil {
		t.Fatal(err)
	}
	full := img.Bytes()
	if _, err := ReadPageStore(bytes.NewReader(full[:len(full)-1])); err == nil {
		t.Fatal("short image must not decode")
	}
	bad := append([]byte(nil), full...)
	bad[0] ^= 0xFF // break the magic
	if _, err := ReadPageStore(bytes.NewReader(bad)); err == nil {
		t.Fatal("wrong magic must not decode")
	}
}

func TestPageStoreTruncate(t *testing.T) {
	s := NewPageStore()
	s.Put(bytes.Repeat([]byte{1}, PageSize))
	ref := s.Put(bytes.Repeat([]byte{2}, 2*PageSize))
	s.Truncate(2) // drop the second half of the second object
	if s.NumPages() != 2 {
		t.Fatalf("pages after truncate: %d", s.NumPages())
	}
	if _, err := s.Get(ref); err == nil {
		t.Fatal("truncated object must not read back")
	}
	// Out-of-range truncations are no-ops.
	s.Truncate(-1)
	s.Truncate(10)
	if s.NumPages() != 2 {
		t.Fatalf("no-op truncate changed pages: %d", s.NumPages())
	}
	// New appends land after the truncation point.
	ref2 := s.Put([]byte{7})
	if ref2.FirstPage != 2 {
		t.Fatalf("append after truncate at page %d", ref2.FirstPage)
	}
}
