// Package storage implements the data structure layer of Section 4: the
// pointer-free attribute representation of every data type as a root
// record plus database arrays (indices instead of pointers, canonical
// element order), the mapping layout of Figure 7 (a units array whose
// variable-size units reference subranges of shared subarrays), an
// inline/external placement policy for arrays (the FLOB behaviour of the
// Secondo environment the paper targets), and a simple page store that
// plays the role of the DBMS buffer/LOB manager.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt reports a malformed encoding.
var ErrCorrupt = errors.New("storage: corrupt encoding")

// writer serialises fixed-layout records into a growing byte slice,
// little-endian.
type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) boolv(b bool) { w.u8(map[bool]uint8{false: 0, true: 1}[b]) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// reader deserialises from a byte slice, tracking an offset and a sticky
// error so call sites stay linear.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated %s at offset %d", ErrCorrupt, what, r.off)
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail("u8")
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) boolv() bool { return r.u8() != 0 }

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil || r.off+n > len(r.buf) || n < 0 {
		r.fail("string")
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// done checks that the whole buffer was consumed.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf)-r.off)
	}
	return nil
}
