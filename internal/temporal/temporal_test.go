package temporal

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestInstantConversions(t *testing.T) {
	ts := time.Date(2000, 5, 16, 12, 0, 0, 0, time.UTC) // SIGMOD 2000 week
	i := FromTime(ts)
	if got := i.Time(); !got.Equal(ts) {
		t.Errorf("round trip: %v != %v", got, ts)
	}
	if !Instant(5).Less(Instant(6)) || Instant(6).Less(Instant(5)) {
		t.Error("Less wrong")
	}
	if Instant(3).Min(Instant(7)) != 3 || Instant(3).Max(Instant(7)) != 7 {
		t.Error("Min/Max wrong")
	}
	if NegInf.IsFinite() || PosInf.IsFinite() || Instant(math.NaN()).IsFinite() {
		t.Error("IsFinite accepted non-finite")
	}
	if !Instant(0).IsFinite() {
		t.Error("IsFinite rejected 0")
	}
}

func TestIntervalValidate(t *testing.T) {
	if _, err := NewInterval(2, 1, true, true); err == nil {
		t.Error("reversed interval accepted")
	}
	if _, err := NewInterval(1, 1, true, false); err == nil {
		t.Error("half-open degenerate interval accepted")
	}
	if _, err := NewInterval(1, 1, true, true); err != nil {
		t.Errorf("closed degenerate interval rejected: %v", err)
	}
	if _, err := NewInterval(Instant(math.NaN()), 1, true, true); err == nil {
		t.Error("NaN start accepted")
	}
}

func TestIntervalContains(t *testing.T) {
	iv := MustInterval(1, 3, true, false) // [1, 3)
	for _, c := range []struct {
		t    Instant
		want bool
	}{{0.9, false}, {1, true}, {2, true}, {3, false}, {3.1, false}} {
		if got := iv.Contains(c.t); got != c.want {
			t.Errorf("[1,3).Contains(%v) = %v", c.t, got)
		}
	}
	if !iv.ContainsOpen(2) || iv.ContainsOpen(1) || iv.ContainsOpen(3) {
		t.Error("ContainsOpen wrong")
	}
	deg := AtInstant(5)
	if !deg.ContainsOpen(5) {
		t.Error("degenerate interval: its instant is its open part")
	}
}

func TestDisjointAdjacent(t *testing.T) {
	a := MustInterval(0, 1, true, true)  // [0,1]
	b := MustInterval(1, 2, true, true)  // [1,2]
	c := MustInterval(1, 2, false, true) // (1,2]
	d := MustInterval(2, 3, false, true) // (2,3]

	if a.Disjoint(b) {
		t.Error("[0,1] and [1,2] share instant 1")
	}
	if !a.Disjoint(c) {
		t.Error("[0,1] and (1,2] are disjoint")
	}
	if !a.Adjacent(c) {
		t.Error("[0,1] and (1,2] are adjacent")
	}
	if !c.Adjacent(a) {
		t.Error("adjacency must be symmetric")
	}
	if !c.Adjacent(d) {
		// (1,2] and (2,3] share no instant and their union is (1,3]:
		// adjacent.
		t.Error("(1,2] and (2,3] are adjacent")
	}
	if !a.Before(c) || c.Before(a) {
		t.Error("Before wrong")
	}
	open1 := MustInterval(0, 1, true, false) // [0,1)
	open2 := MustInterval(1, 2, false, true) // (1,2]
	if !open1.Disjoint(open2) {
		t.Error("[0,1) and (1,2] are disjoint")
	}
	if open1.Adjacent(open2) {
		t.Error("[0,1) and (1,2] leave a gap at 1: not adjacent")
	}
}

func TestIntervalIntersect(t *testing.T) {
	a := MustInterval(0, 4, true, false) // [0,4)
	b := MustInterval(2, 6, false, true) // (2,6]
	got, ok := a.Intersect(b)
	if !ok || got != MustInterval(2, 4, false, false) {
		t.Errorf("intersect = %v, %v", got, ok)
	}
	// Touching at a shared closed endpoint: degenerate result.
	c := MustInterval(4, 6, true, true)
	a2 := MustInterval(0, 4, true, true)
	got, ok = a2.Intersect(c)
	if !ok || got != AtInstant(4) {
		t.Errorf("touch intersect = %v, %v", got, ok)
	}
	// Touching with an open side: no intersection.
	if _, ok := a.Intersect(c); ok {
		t.Error("[0,4) ∩ [4,6] should be empty")
	}
	if _, ok := a.Intersect(MustInterval(7, 8, true, true)); ok {
		t.Error("disjoint intervals intersect")
	}
}

func TestIntervalUnion(t *testing.T) {
	a := MustInterval(0, 2, true, false)
	b := MustInterval(2, 4, true, true)
	got, ok := a.Union(b)
	if !ok || got != MustInterval(0, 4, true, true) {
		t.Errorf("union = %v, %v", got, ok)
	}
	if _, ok := a.Union(MustInterval(5, 6, true, true)); ok {
		t.Error("union of separated intervals should fail")
	}
	// Overlapping.
	c := MustInterval(1, 5, false, false)
	got, ok = a.Union(c)
	if !ok || got != MustInterval(0, 5, true, false) {
		t.Errorf("overlap union = %v, %v", got, ok)
	}
	// Same start, closure is ORed.
	d := MustInterval(0, 1, false, true)
	got, ok = a.Union(d)
	if !ok || !got.LC {
		t.Errorf("same-start union closure = %v", got)
	}
}

func TestIntervalMinus(t *testing.T) {
	a := MustInterval(0, 10, true, true)
	mid := MustInterval(3, 5, true, false) // [3,5)
	out := a.Minus(mid)
	if len(out) != 2 {
		t.Fatalf("minus = %v", out)
	}
	if out[0] != MustInterval(0, 3, true, false) {
		t.Errorf("left = %v", out[0])
	}
	if out[1] != MustInterval(5, 10, true, true) {
		t.Errorf("right = %v", out[1])
	}
	// Removing a superset leaves nothing.
	if out := mid.Minus(a); len(out) != 0 {
		t.Errorf("superset minus = %v", out)
	}
	// Removing an open interval leaves its closed endpoints.
	out = MustInterval(3, 5, true, true).Minus(MustInterval(3, 5, false, false))
	if len(out) != 2 || out[0] != AtInstant(3) || out[1] != AtInstant(5) {
		t.Errorf("endpoints minus = %v", out)
	}
	// Disjoint removal is the identity.
	out = a.Minus(MustInterval(11, 12, true, true))
	if len(out) != 1 || out[0] != a {
		t.Errorf("disjoint minus = %v", out)
	}
}

func TestIntervalMinusProperty(t *testing.T) {
	// For random intervals and probe instants: t ∈ a.Minus(b) iff
	// t ∈ a and t ∉ b.
	f := func(s1, e1, s2, e2 int8, lc1, rc1, lc2, rc2 bool, probe int8) bool {
		a, err := NewInterval(Instant(min(s1, e1)), Instant(max(s1, e1)), lc1 || s1 == e1, rc1 || s1 == e1)
		if err != nil {
			return true
		}
		b, err := NewInterval(Instant(min(s2, e2)), Instant(max(s2, e2)), lc2 || s2 == e2, rc2 || s2 == e2)
		if err != nil {
			return true
		}
		t0 := Instant(probe)
		want := a.Contains(t0) && !b.Contains(t0)
		got := false
		for _, iv := range a.Minus(b) {
			if iv.Validate() != nil {
				return false
			}
			if iv.Contains(t0) {
				got = true
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPeriodsCanonical(t *testing.T) {
	p := MustPeriods(
		MustInterval(5, 7, true, true),
		MustInterval(0, 2, true, false),
		MustInterval(2, 4, true, true), // adjacent to [0,2) -> merge
		MustInterval(6, 9, false, true),
	)
	ivs := p.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("canonical = %v", p)
	}
	if ivs[0] != MustInterval(0, 4, true, true) || ivs[1] != MustInterval(5, 9, true, true) {
		t.Errorf("canonical = %v", p)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if p.Duration() != 4+4 {
		t.Errorf("Duration = %v", p.Duration())
	}
}

func TestPeriodsContains(t *testing.T) {
	p := MustPeriods(MustInterval(0, 2, true, false), MustInterval(5, 7, false, true))
	cases := []struct {
		t    Instant
		want bool
	}{{-1, false}, {0, true}, {1, true}, {2, false}, {3, false}, {5, false}, {6, true}, {7, true}, {8, false}}
	for _, c := range cases {
		if got := p.Contains(c.t); got != c.want {
			t.Errorf("Contains(%v) = %v", c.t, got)
		}
	}
	lo, ok := p.MinInstant()
	if !ok || lo != 0 {
		t.Error("MinInstant wrong")
	}
	hi, ok := p.MaxInstant()
	if !ok || hi != 7 {
		t.Error("MaxInstant wrong")
	}
	if _, ok := (Periods{}).MinInstant(); ok {
		t.Error("empty MinInstant should fail")
	}
}

func TestPeriodsSetOps(t *testing.T) {
	p := MustPeriods(MustInterval(0, 4, true, true))
	q := MustPeriods(MustInterval(2, 6, true, true), MustInterval(8, 9, true, true))

	u := p.Union(q)
	if u.Len() != 2 || u.Intervals()[0] != MustInterval(0, 6, true, true) {
		t.Errorf("union = %v", u)
	}
	i := p.Intersect(q)
	if i.Len() != 1 || i.Intervals()[0] != MustInterval(2, 4, true, true) {
		t.Errorf("intersect = %v", i)
	}
	m := p.Minus(q)
	if m.Len() != 1 || m.Intervals()[0] != MustInterval(0, 2, true, false) {
		t.Errorf("minus = %v", m)
	}
	if !p.Minus(p).IsEmpty() {
		t.Error("p \\ p not empty")
	}
	if !p.Intersect(Periods{}).IsEmpty() {
		t.Error("p ∩ ∅ not empty")
	}
	if !p.Union(Periods{}).Equal(p) {
		t.Error("p ∪ ∅ != p")
	}
}

func TestPeriodsSetOpsProperty(t *testing.T) {
	// Membership semantics of union/intersection/difference against
	// random interval soups, probed at integer instants.
	mk := func(raw []int8, flags []bool) Periods {
		var ivs []Interval
		for k := 0; k+1 < len(raw) && k+1 < len(flags); k += 2 {
			s, e := raw[k], raw[k+1]
			if s > e {
				s, e = e, s
			}
			lc, rc := flags[k], flags[k+1]
			if s == e {
				lc, rc = true, true
			}
			ivs = append(ivs, MustInterval(Instant(s), Instant(e), lc, rc))
		}
		return MustPeriods(ivs...)
	}
	f := func(raw1, raw2 []int8, flags1, flags2 []bool, probe int8) bool {
		p, q := mk(raw1, flags1), mk(raw2, flags2)
		t0 := Instant(probe)
		inP, inQ := p.Contains(t0), q.Contains(t0)
		if p.Union(q).Contains(t0) != (inP || inQ) {
			return false
		}
		if p.Intersect(q).Contains(t0) != (inP && inQ) {
			return false
		}
		if p.Minus(q).Contains(t0) != (inP && !inQ) {
			return false
		}
		return p.Union(q).Validate() == nil && p.Intersect(q).Validate() == nil && p.Minus(q).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestPeriodsEqualCanonicalRepresentation(t *testing.T) {
	// The same instant set assembled differently must compare equal —
	// the unique-representation property of Section 3.2.3.
	p := MustPeriods(MustInterval(0, 1, true, false), MustInterval(1, 2, true, true))
	q := MustPeriods(MustInterval(0, 2, true, true))
	if !p.Equal(q) {
		t.Errorf("canonical forms differ: %v vs %v", p, q)
	}
}

func TestRefineBasic(t *testing.T) {
	// Figure 8 shape: two interval sets refine into the partition at
	// every boundary.
	a := []Interval{MustInterval(0, 4, true, true), MustInterval(6, 8, true, true)}
	b := []Interval{MustInterval(2, 7, true, true)}
	out := Refine(a, b)

	// Check coverage and membership by probing.
	probes := []struct {
		t            Instant
		inA, inB     bool
		wantACovered bool
	}{
		{0, true, false, true}, {1, true, false, true}, {2, true, true, true},
		{3, true, true, true}, {4, true, true, true}, {4.5, false, true, false},
		{5, false, true, false}, {6, true, true, true}, {7, true, true, true},
		{7.5, true, false, true}, {8, true, false, true}, {9, false, false, false},
	}
	covered := func(t0 Instant) (bool, bool, bool) {
		for _, ri := range out {
			if ri.Iv.Contains(t0) {
				return true, ri.A >= 0, ri.B >= 0
			}
		}
		return false, false, false
	}
	for _, pr := range probes {
		inPart, gotA, gotB := covered(pr.t)
		if inPart != (pr.inA || pr.inB) {
			t.Errorf("t=%v: covered=%v want %v", pr.t, inPart, pr.inA || pr.inB)
			continue
		}
		if inPart && (gotA != pr.inA || gotB != pr.inB) {
			t.Errorf("t=%v: membership (%v,%v) want (%v,%v)", pr.t, gotA, gotB, pr.inA, pr.inB)
		}
	}
	// The partition must be ordered and non-overlapping.
	for k := 1; k < len(out); k++ {
		if !out[k-1].Iv.RDisjoint(out[k].Iv) {
			t.Errorf("partition overlaps at %d: %v then %v", k, out[k-1].Iv, out[k].Iv)
		}
	}
	// Indices must point at the covering intervals.
	for _, ri := range out {
		mid := Instant((float64(ri.Iv.Start) + float64(ri.Iv.End)) / 2)
		if ri.A >= 0 && !a[ri.A].Contains(mid) {
			t.Errorf("A index %d does not cover %v", ri.A, ri.Iv)
		}
		if ri.B >= 0 && !b[ri.B].Contains(mid) {
			t.Errorf("B index %d does not cover %v", ri.B, ri.Iv)
		}
	}
}

func TestRefineEmpty(t *testing.T) {
	if out := Refine(nil, nil); out != nil {
		t.Errorf("refine of empties = %v", out)
	}
	a := []Interval{MustInterval(0, 1, true, true)}
	out := Refine(a, nil)
	if len(out) != 1 || out[0].A != 0 || out[0].B != -1 || out[0].Iv != a[0] {
		t.Errorf("one-sided refine = %v", out)
	}
}

func TestRefineClosureBoundaries(t *testing.T) {
	// [0,2) meets (2,4]: the instant 2 belongs to neither and must be
	// absent from the partition.
	a := []Interval{MustInterval(0, 2, true, false)}
	b := []Interval{MustInterval(2, 4, false, true)}
	out := Refine(a, b)
	for _, ri := range out {
		if ri.Iv.Contains(2) {
			t.Errorf("instant 2 wrongly covered by %v", ri.Iv)
		}
	}
	// [0,2] meets [2,4]: instant 2 is in both; the partition must have a
	// piece containing 2 with membership in A and B.
	a = []Interval{MustInterval(0, 2, true, true)}
	b = []Interval{MustInterval(2, 4, true, true)}
	out = Refine(a, b)
	found := false
	for _, ri := range out {
		if ri.Iv.Contains(2) {
			found = true
			if ri.A != 0 || ri.B != 0 {
				t.Errorf("at 2: membership (%d,%d)", ri.A, ri.B)
			}
		}
	}
	if !found {
		t.Error("instant 2 missing from partition")
	}
}

func TestRefineProperty(t *testing.T) {
	// Random canonical period pairs: the refinement must cover exactly
	// the union and have correct memberships everywhere.
	mk := func(raw []int8) Periods {
		var ivs []Interval
		for k := 0; k+1 < len(raw); k += 2 {
			s, e := raw[k], raw[k+1]
			if s > e {
				s, e = e, s
			}
			ivs = append(ivs, Closed(Instant(s), Instant(e)))
		}
		return MustPeriods(ivs...)
	}
	f := func(raw1, raw2 []int8, probe int8) bool {
		p, q := mk(raw1), mk(raw2)
		out := RefinePeriods(p, q)
		t0 := Instant(probe)
		var got *RefinementInterval
		for k := range out {
			if out[k].Iv.Contains(t0) {
				if got != nil {
					return false // overlap in partition
				}
				got = &out[k]
			}
		}
		inP, inQ := p.Contains(t0), q.Contains(t0)
		if (got != nil) != (inP || inQ) {
			return false
		}
		if got != nil && ((got.A >= 0) != inP || (got.B >= 0) != inQ) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestIntervalUnionIntersectMembershipProperty(t *testing.T) {
	mkIv := func(s, e int8, lc, rc bool) (Interval, bool) {
		lo, hi := s, e
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			lc, rc = true, true
		}
		iv, err := NewInterval(Instant(lo), Instant(hi), lc, rc)
		return iv, err == nil
	}
	f := func(s1, e1, s2, e2 int8, lc1, rc1, lc2, rc2 bool, probe int8) bool {
		a, ok1 := mkIv(s1, e1, lc1, rc1)
		b, ok2 := mkIv(s2, e2, lc2, rc2)
		if !ok1 || !ok2 {
			return true
		}
		t0 := Instant(probe)
		if got, ok := a.Intersect(b); ok {
			if got.Contains(t0) != (a.Contains(t0) && b.Contains(t0)) {
				return false
			}
		} else if a.Contains(t0) && b.Contains(t0) {
			return false
		}
		if got, ok := a.Union(b); ok {
			want := a.Contains(t0) || b.Contains(t0)
			// The union interval may cover gap instants only when the
			// inputs are adjacent or overlapping (which ok guarantees),
			// so membership must match exactly.
			if got.Contains(t0) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
