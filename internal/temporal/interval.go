package temporal

import (
	"errors"
	"fmt"
)

// Interval is a time interval with individually controlled closure:
// the carrier set Interval(Instant) of Section 3.2.3. Start ≤ End is
// required, and a degenerate interval (Start == End) must be closed on
// both sides.
type Interval struct {
	Start, End Instant
	// LC and RC record whether the interval is left-closed and
	// right-closed, respectively.
	LC, RC bool
}

// ErrInvalidInterval is returned for representations violating the
// carrier set constraints (end before start, or a half-open instant).
var ErrInvalidInterval = errors.New("temporal: invalid interval")

// NewInterval validates and returns the interval (s, e, lc, rc).
func NewInterval(s, e Instant, lc, rc bool) (Interval, error) {
	i := Interval{Start: s, End: e, LC: lc, RC: rc}
	if err := i.Validate(); err != nil {
		return Interval{}, err
	}
	return i, nil
}

// MustInterval is like NewInterval but panics on invalid input; for
// literals in tests and examples.
func MustInterval(s, e Instant, lc, rc bool) Interval {
	i, err := NewInterval(s, e, lc, rc)
	if err != nil {
		panic(err)
	}
	return i
}

// Closed returns the closed interval [s, e].
func Closed(s, e Instant) Interval { return MustInterval(s, e, true, true) }

// Open returns the open interval (s, e); s < e is required.
func Open(s, e Instant) Interval { return MustInterval(s, e, false, false) }

// LeftHalfOpen returns (s, e], the natural shape for chaining units.
func LeftHalfOpen(s, e Instant) Interval { return MustInterval(s, e, false, true) }

// RightHalfOpen returns [s, e), the natural shape for chaining units.
func RightHalfOpen(s, e Instant) Interval { return MustInterval(s, e, true, false) }

// AtInstant returns the degenerate interval [t, t].
func AtInstant(t Instant) Interval { return Interval{Start: t, End: t, LC: true, RC: true} }

// Validate checks the carrier set constraints: Start ≤ End, and a
// degenerate interval is closed on both sides.
func (i Interval) Validate() error {
	if !(i.Start <= i.End) { // also rejects NaN
		// moguard: allocok error construction runs only on the rejection path, never on an accepted observation
		return fmt.Errorf("%w: start %v after end %v", ErrInvalidInterval, i.Start, i.End)
	}
	if i.Start == i.End && !(i.LC && i.RC) {
		// moguard: allocok error construction runs only on the rejection path, never on an accepted observation
		return fmt.Errorf("%w: degenerate interval at %v must be closed", ErrInvalidInterval, i.Start)
	}
	return nil
}

// IsDegenerate reports whether the interval contains a single instant.
func (i Interval) IsDegenerate() bool { return i.Start == i.End }

// Contains reports whether instant t belongs to the interval, honouring
// the closure flags (the semantics function σ of the paper).
func (i Interval) Contains(t Instant) bool {
	if t < i.Start || t > i.End {
		return false
	}
	if t == i.Start && !i.LC {
		return false
	}
	if t == i.End && !i.RC {
		return false
	}
	return true
}

// ContainsOpen reports whether t belongs to the open part of the
// interval (the paper's σ′): strictly between Start and End, except that
// for a degenerate interval the single instant counts as its open part,
// matching the special-casing of single-instant units in Section 3.2.6.
func (i Interval) ContainsOpen(t Instant) bool {
	if i.IsDegenerate() {
		return t == i.Start
	}
	return t > i.Start && t < i.End
}

// Duration returns End − Start.
func (i Interval) Duration() float64 { return float64(i.End - i.Start) }

// RDisjoint implements the paper's r-disjoint predicate: i ends before u
// begins (allowing a shared endpoint only if not both sides are closed).
func (i Interval) RDisjoint(u Interval) bool {
	return i.End < u.Start || (i.End == u.Start && !(i.RC && u.LC))
}

// Disjoint reports whether i and u share no instant.
func (i Interval) Disjoint(u Interval) bool { return i.RDisjoint(u) || u.RDisjoint(i) }

// RAdjacent implements the paper's r-adjacent predicate over the
// continuous time domain: i and u are disjoint and meet exactly at
// i.End == u.Start with exactly one closed side (so their union is again
// an interval with no gap and no overlap).
func (i Interval) RAdjacent(u Interval) bool {
	return i.Disjoint(u) && i.End == u.Start && (i.RC || u.LC)
}

// Adjacent reports whether i and u are adjacent on either side.
func (i Interval) Adjacent(u Interval) bool { return i.RAdjacent(u) || u.RAdjacent(i) }

// Before reports whether every instant of i is ≤ every instant of u,
// with i strictly preceding u as a whole. It induces the total order on
// the disjoint intervals of a Periods value.
func (i Interval) Before(u Interval) bool { return i.RDisjoint(u) }

// Intersect returns the common sub-interval of i and u, if any.
func (i Interval) Intersect(u Interval) (Interval, bool) {
	s := i.Start.Max(u.Start)
	e := i.End.Min(u.End)
	if s > e {
		return Interval{}, false
	}
	lc := i.Contains(s) && u.Contains(s)
	rc := i.Contains(e) && u.Contains(e)
	if s == e {
		if lc && rc {
			return AtInstant(s), true
		}
		return Interval{}, false
	}
	return Interval{Start: s, End: e, LC: lc, RC: rc}, true
}

// Union returns the union of i and u as a single interval. It is only
// defined (ok == true) when the union is itself an interval, i.e. the
// two intervals intersect or are adjacent.
func (i Interval) Union(u Interval) (Interval, bool) {
	if i.Disjoint(u) && !i.Adjacent(u) {
		return Interval{}, false
	}
	out := Interval{}
	switch {
	case i.Start < u.Start:
		out.Start, out.LC = i.Start, i.LC
	case u.Start < i.Start:
		out.Start, out.LC = u.Start, u.LC
	default:
		out.Start, out.LC = i.Start, i.LC || u.LC
	}
	switch {
	case i.End > u.End:
		out.End, out.RC = i.End, i.RC
	case u.End > i.End:
		out.End, out.RC = u.End, u.RC
	default:
		out.End, out.RC = i.End, i.RC || u.RC
	}
	return out, true
}

// Minus returns i with the instants of u removed, as zero, one or two
// intervals in temporal order.
func (i Interval) Minus(u Interval) []Interval {
	if i.Disjoint(u) {
		return []Interval{i}
	}
	var out []Interval
	// Left remainder: instants of i before u starts.
	if i.Start < u.Start || (i.Start == u.Start && i.LC && !u.LC) {
		left := Interval{Start: i.Start, End: u.Start, LC: i.LC, RC: !u.LC}
		if left.Validate() == nil {
			out = append(out, left)
		}
	}
	// Right remainder: instants of i after u ends.
	if i.End > u.End || (i.End == u.End && i.RC && !u.RC) {
		right := Interval{Start: u.End, End: i.End, LC: !u.RC, RC: i.RC}
		if right.Validate() == nil {
			out = append(out, right)
		}
	}
	return out
}

// String formats the interval with standard bracket notation, e.g.
// "[1, 2)" or "(0, 5]".
func (i Interval) String() string {
	lb, rb := "(", ")"
	if i.LC {
		lb = "["
	}
	if i.RC {
		rb = "]"
	}
	return fmt.Sprintf("%s%v, %v%s", lb, i.Start, i.End, rb)
}
