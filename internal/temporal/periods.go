package temporal

import (
	"fmt"
	"slices"
	"strings"
)

// Periods is the range(instant) type: a finite set of pairwise disjoint,
// non-adjacent intervals in temporal order. The canonical (minimal,
// unique) representation required by Section 3.2.3 is maintained by all
// constructors and operations, so two Periods values denote the same
// point set iff they are slice-equal.
type Periods struct {
	ivs []Interval
}

// NewPeriods builds a canonical Periods value from arbitrary intervals:
// the input is sorted and overlapping or adjacent intervals are merged.
// Invalid intervals cause an error.
func NewPeriods(ivs ...Interval) (Periods, error) {
	for _, iv := range ivs {
		if err := iv.Validate(); err != nil {
			return Periods{}, err
		}
	}
	work := make([]Interval, len(ivs))
	copy(work, ivs)
	slices.SortFunc(work, func(a, b Interval) int {
		switch {
		case a.Start < b.Start:
			return -1
		case a.Start > b.Start:
			return 1
		case a.LC && !b.LC:
			return -1
		case !a.LC && b.LC:
			return 1
		case a.End < b.End:
			return -1
		case a.End > b.End:
			return 1
		}
		return 0
	})
	var out []Interval
	for _, iv := range work {
		if n := len(out); n > 0 {
			if u, ok := out[n-1].Union(iv); ok {
				out[n-1] = u
				continue
			}
		}
		out = append(out, iv)
	}
	return Periods{ivs: out}, nil
}

// MustPeriods is like NewPeriods but panics on invalid intervals.
func MustPeriods(ivs ...Interval) Periods {
	p, err := NewPeriods(ivs...)
	if err != nil {
		panic(err)
	}
	return p
}

// Intervals returns the canonical interval sequence (shared slice; do
// not modify).
func (p Periods) Intervals() []Interval { return p.ivs }

// Len returns the number of intervals.
func (p Periods) Len() int { return len(p.ivs) }

// IsEmpty reports whether the period set contains no instant.
func (p Periods) IsEmpty() bool { return len(p.ivs) == 0 }

// Contains reports whether instant t belongs to the period set, by
// binary search over the ordered intervals.
func (p Periods) Contains(t Instant) bool {
	_, ok := p.find(t)
	return ok
}

// find locates the interval containing t, returning its index.
func (p Periods) find(t Instant) (int, bool) {
	lo, hi := 0, len(p.ivs)
	for lo < hi {
		mid := (lo + hi) / 2
		iv := p.ivs[mid]
		switch {
		case iv.Contains(t):
			return mid, true
		case t < iv.Start || (t == iv.Start && !iv.LC):
			hi = mid
		default:
			lo = mid + 1
		}
	}
	return lo, false
}

// Duration returns the total length of all intervals.
func (p Periods) Duration() float64 {
	var d float64
	for _, iv := range p.ivs {
		d += iv.Duration()
	}
	return d
}

// MinInstant returns the earliest instant (or the infimum, if the first
// interval is left-open); ok is false for an empty set.
func (p Periods) MinInstant() (Instant, bool) {
	if len(p.ivs) == 0 {
		return 0, false
	}
	return p.ivs[0].Start, true
}

// MaxInstant returns the latest instant (or the supremum); ok is false
// for an empty set.
func (p Periods) MaxInstant() (Instant, bool) {
	if len(p.ivs) == 0 {
		return 0, false
	}
	return p.ivs[len(p.ivs)-1].End, true
}

// Union returns the set union of p and q, again canonical.
func (p Periods) Union(q Periods) Periods {
	all := make([]Interval, 0, len(p.ivs)+len(q.ivs))
	all = append(all, p.ivs...)
	all = append(all, q.ivs...)
	out, err := NewPeriods(all...)
	if err != nil {
		// Inputs were canonical, so this cannot happen.
		panic(fmt.Sprintf("temporal: union of canonical periods failed: %v", err))
	}
	return out
}

// Intersect returns the set intersection of p and q by a linear merge of
// the two ordered interval sequences.
func (p Periods) Intersect(q Periods) Periods {
	var out []Interval
	i, j := 0, 0
	for i < len(p.ivs) && j < len(q.ivs) {
		a, b := p.ivs[i], q.ivs[j]
		if iv, ok := a.Intersect(b); ok {
			out = append(out, iv)
		}
		// Advance the interval that ends first.
		if a.End < b.End || (a.End == b.End && !a.RC) {
			i++
		} else {
			j++
		}
	}
	return Periods{ivs: out}
}

// Minus returns the instants of p not in q.
func (p Periods) Minus(q Periods) Periods {
	var out []Interval
	for _, a := range p.ivs {
		rest := []Interval{a}
		for _, b := range q.ivs {
			var next []Interval
			for _, r := range rest {
				next = append(next, r.Minus(b)...)
			}
			rest = next
			if len(rest) == 0 {
				break
			}
		}
		out = append(out, rest...)
	}
	res, err := NewPeriods(out...)
	if err != nil {
		panic(fmt.Sprintf("temporal: minus produced invalid intervals: %v", err))
	}
	return res
}

// Equal reports whether p and q denote the same instant set. Because
// both are canonical, this is plain representation equality — the
// property the paper's ordered-array design is built to guarantee.
func (p Periods) Equal(q Periods) bool { return slices.Equal(p.ivs, q.ivs) }

// Validate checks canonicity: intervals valid, ordered, pairwise
// disjoint and non-adjacent. Constructors maintain this; Validate exists
// for values deserialised from storage.
func (p Periods) Validate() error {
	for k, iv := range p.ivs {
		if err := iv.Validate(); err != nil {
			return err
		}
		if k > 0 {
			prev := p.ivs[k-1]
			if !prev.RDisjoint(iv) {
				return fmt.Errorf("%w: intervals %v and %v out of order or overlapping", ErrInvalidInterval, prev, iv)
			}
			if prev.Adjacent(iv) {
				return fmt.Errorf("%w: intervals %v and %v adjacent (not minimal)", ErrInvalidInterval, prev, iv)
			}
		}
	}
	return nil
}

// String formats the period set as "{[a, b), (c, d]}".
func (p Periods) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for k, iv := range p.ivs {
		if k > 0 {
			b.WriteString(", ")
		}
		b.WriteString(iv.String())
	}
	b.WriteByte('}')
	return b.String()
}
