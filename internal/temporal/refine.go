package temporal

import "slices"

// RefinementInterval is one element of the refinement partition of two
// interval sequences (Figure 8 of the paper): a maximal interval on
// which membership in both sequences is constant. A and B carry the
// index of the covering interval in the first and second input sequence,
// or −1 if the sequence does not cover the interval.
type RefinementInterval struct {
	Iv   Interval
	A, B int
}

// Refine computes the refinement partition of two sequences of intervals
// that are each ordered, pairwise disjoint and non-adjacent (the shape
// of unit intervals inside a mapping, and of Periods). The result covers
// exactly the union of the two sequences, in temporal order, split at
// every boundary of either input, with adjacent pieces of identical
// membership merged. Binary operations on moving objects traverse this
// partition and apply a unit-pair kernel per element (Section 5.2).
//
// The cost is O(n + m) in the input sizes.
func Refine(a, b []Interval) []RefinementInterval {
	// Collect the cut instants: every start and end of either sequence.
	cuts := make([]Instant, 0, 2*(len(a)+len(b)))
	for _, iv := range a {
		cuts = append(cuts, iv.Start, iv.End)
	}
	for _, iv := range b {
		cuts = append(cuts, iv.Start, iv.End)
	}
	slices.Sort(cuts)
	cuts = slices.Compact(cuts)
	if len(cuts) == 0 {
		return nil
	}

	// Walk the atomic decomposition — alternating degenerate [t_k, t_k]
	// and open (t_k, t_{k+1}) atoms — and assign memberships with two
	// advancing pointers per sequence.
	var out []RefinementInterval
	ia, ib := 0, 0
	emit := func(atom Interval, idxA, idxB int) {
		if idxA < 0 && idxB < 0 {
			return
		}
		if n := len(out); n > 0 && out[n-1].A == idxA && out[n-1].B == idxB {
			if u, ok := out[n-1].Iv.Union(atom); ok {
				out[n-1].Iv = u
				return
			}
		}
		out = append(out, RefinementInterval{Iv: atom, A: idxA, B: idxB})
	}
	// coverPoint returns the index of the interval in seq containing t,
	// advancing ptr past intervals entirely before t.
	coverPoint := func(seq []Interval, ptr *int, t Instant) int {
		for *ptr < len(seq) && seq[*ptr].End < t {
			*ptr++
		}
		// The interval at *ptr may end exactly at t but open; peek ahead
		// one position to handle [x, t) immediately followed by a later
		// interval starting at t.
		for k := *ptr; k < len(seq) && seq[k].Start <= t; k++ {
			if seq[k].Contains(t) {
				return k
			}
		}
		return -1
	}
	// coverOpen returns the index of the interval containing the whole
	// open atom (lo, hi). Because lo and hi are cuts, an interval either
	// contains all of the atom or none of it.
	coverOpen := func(seq []Interval, ptr *int, lo, hi Instant) int {
		for *ptr < len(seq) && seq[*ptr].End <= lo {
			*ptr++
		}
		if *ptr < len(seq) {
			iv := seq[*ptr]
			if iv.Start <= lo && hi <= iv.End {
				return *ptr
			}
		}
		return -1
	}

	for k, t := range cuts {
		// Degenerate atom at the cut itself.
		pa := coverPoint(a, &ia, t)
		pb := coverPoint(b, &ib, t)
		emit(AtInstant(t), pa, pb)
		// Open atom up to the next cut.
		if k+1 < len(cuts) {
			lo, hi := t, cuts[k+1]
			oa := coverOpen(a, &ia, lo, hi)
			ob := coverOpen(b, &ib, lo, hi)
			emit(Open(lo, hi), oa, ob)
		}
	}
	return out
}

// RefinePeriods is a convenience wrapper applying Refine to two Periods
// values.
func RefinePeriods(p, q Periods) []RefinementInterval {
	return Refine(p.Intervals(), q.Intervals())
}
