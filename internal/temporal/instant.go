// Package temporal implements the time domain of the discrete moving
// objects data model: instants (a time domain isomorphic to the reals),
// intervals with individual closure flags, and canonical sets of
// disjoint, non-adjacent intervals (the range(instant) type, here called
// Periods). It also provides the refinement partition of two interval
// sequences (Figure 8 of the paper), the backbone of every lifted binary
// operation on moving objects.
package temporal

import (
	"fmt"
	"math"
	"time"
)

// Instant is a point on the time axis. Following Section 3.2.1 of the
// paper, the time domain is represented by a programming language real:
// the unit is seconds, with zero an arbitrary epoch. Conversions to and
// from time.Time interpret the value as seconds since the Unix epoch.
type Instant float64

// NegInf and PosInf bound the time axis for algorithms that need
// sentinels; they are not valid instants inside values.
var (
	NegInf = Instant(math.Inf(-1))
	PosInf = Instant(math.Inf(1))
)

// FromTime converts a time.Time to an Instant (seconds since Unix epoch,
// with nanosecond fraction).
func FromTime(t time.Time) Instant {
	return Instant(float64(t.Unix()) + float64(t.Nanosecond())/1e9)
}

// Time converts the instant back to a time.Time in UTC.
func (t Instant) Time() time.Time {
	sec, frac := math.Modf(float64(t))
	return time.Unix(int64(sec), int64(frac*1e9)).UTC()
}

// Less reports whether t is strictly before u.
func (t Instant) Less(u Instant) bool { return t < u }

// Min returns the earlier of t and u.
func (t Instant) Min(u Instant) Instant { return Instant(math.Min(float64(t), float64(u))) }

// Max returns the later of t and u.
func (t Instant) Max(u Instant) Instant { return Instant(math.Max(float64(t), float64(u))) }

// IsFinite reports whether t is a real instant (not ±infinity, not NaN).
func (t Instant) IsFinite() bool {
	f := float64(t)
	return !math.IsInf(f, 0) && !math.IsNaN(f)
}

// String formats the instant as a plain number, which is the most useful
// form for the synthetic time axes used throughout the experiments.
func (t Instant) String() string { return fmt.Sprintf("%g", float64(t)) }
