package db

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// The query language is the minimal SQL dialect the paper's Section 2
// examples are written in: SELECT-FROM-WHERE over relations with moving
// object attributes, expressions built from the model's operations
// (length, trajectory, distance, atmin, initial, val, inside, ...).

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokOp      // < > <= >= = <>
	tokArith   // + - * /
	tokKeyword // SELECT FROM WHERE AND OR NOT AS TRUE FALSE
)

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true, "AS": true,
	"TRUE": true, "FALSE": true,
	"ORDER": true, "BY": true, "GROUP": true, "ASC": true, "DESC": true, "LIMIT": true,
}

// lex splits a query string into tokens.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma, text: ",", pos: i})
			i++
		case c == '.':
			toks = append(toks, token{kind: tokDot, text: ".", pos: i})
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "(", pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")", pos: i})
			i++
		case c == '+' || c == '*' || c == '/' || c == '-':
			toks = append(toks, token{kind: tokArith, text: string(c), pos: i})
			i++
		case c == '<' || c == '>' || c == '=':
			op := string(c)
			if c == '<' && i+1 < len(src) && (src[i+1] == '=' || src[i+1] == '>') {
				op += string(src[i+1])
			} else if c == '>' && i+1 < len(src) && src[i+1] == '=' {
				op += "="
			}
			toks = append(toks, token{kind: tokOp, text: op, pos: i})
			i += len(op)
		case c == '\'' || c == '"':
			quote := byte(c)
			j := i + 1
			for j < len(src) && src[j] != quote {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("db: unterminated string at %d", i)
			}
			toks = append(toks, token{kind: tokString, text: src[i+1 : j], pos: i})
			i = j + 1
		case unicode.IsDigit(c):
			j := i
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.' ||
				src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			f, err := strconv.ParseFloat(src[i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("db: bad number %q at %d", src[i:j], i)
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j], num: f, pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			word := src[i:j]
			if keywords[strings.ToUpper(word)] {
				toks = append(toks, token{kind: tokKeyword, text: strings.ToUpper(word), pos: i})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: i})
			}
			i = j
		default:
			return nil, fmt.Errorf("db: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(src)})
	return toks, nil
}
