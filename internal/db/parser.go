package db

import (
	"errors"
	"fmt"
)

// ErrSyntax reports a malformed query.
var ErrSyntax = errors.New("db: syntax error")

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) at(k tokenKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokenKind, text string) bool {
	if p.at(k, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k tokenKind, text string) (token, error) {
	t := p.cur()
	if !p.at(k, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", k)
		}
		return token{}, fmt.Errorf("%w: expected %s at position %d, got %q", ErrSyntax, want, t.pos, t.text)
	}
	p.advance()
	return t, nil
}

// parseQuery parses a full SELECT statement.
func parseQuery(src string) (*selectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &selectStmt{}
	if p.accept(tokArith, "*") {
		stmt.star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := selectItem{e: e}
			if p.accept(tokKeyword, "AS") {
				id, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				item.alias = id.text
			}
			stmt.items = append(stmt.items, item)
			if !p.accept(tokComma, "") {
				break
			}
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		rel, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		item := fromItem{rel: rel.text, alias: rel.text}
		if p.at(tokIdent, "") {
			item.alias = p.cur().text
			p.advance()
		}
		stmt.from = append(stmt.from, item)
		if !p.accept(tokComma, "") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			ref, ok := e.(colRef)
			if !ok {
				return nil, fmt.Errorf("%w: GROUP BY expects column references", ErrSyntax)
			}
			stmt.groupBy = append(stmt.groupBy, ref)
			if !p.accept(tokComma, "") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := orderItem{e: e}
			if p.accept(tokKeyword, "DESC") {
				item.desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			stmt.orderBy = append(stmt.orderBy, item)
			if !p.accept(tokComma, "") {
				break
			}
		}
	}
	stmt.limit = -1
	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		if n.num < 0 || n.num != float64(int(n.num)) {
			return nil, fmt.Errorf("%w: LIMIT must be a non-negative integer", ErrSyntax)
		}
		stmt.limit = int(n.num)
	}
	if _, err := p.expect(tokEOF, ""); err != nil {
		return nil, err
	}
	return stmt, nil
}

// parseExpr parses an OR-level expression.
func (p *parser) parseExpr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = binop{op: "OR", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = binop{op: "AND", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseNot() (expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return notop{e: e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.at(tokOp, "") {
		op := p.cur().text
		p.advance()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return binop{op: op, l: l, r: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(tokArith, "+") || p.at(tokArith, "-") {
		op := p.cur().text
		p.advance()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = binop{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseMul() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokArith, "*") || p.at(tokArith, "/") {
		op := p.cur().text
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = binop{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (expr, error) {
	if p.accept(tokArith, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return negop{e: e}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		return numLit{v: t.num}, nil
	case t.kind == tokString:
		p.advance()
		return strLit{v: t.text}, nil
	case t.kind == tokKeyword && (t.text == "TRUE" || t.text == "FALSE"):
		p.advance()
		return boolLit{v: t.text == "TRUE"}, nil
	case t.kind == tokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ""); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.advance()
		// function call?
		if p.accept(tokLParen, "") {
			var args []expr
			if !p.at(tokRParen, "") {
				for {
					if p.accept(tokArith, "*") {
						args = append(args, starArg{})
					} else {
						a, err := p.parseExpr()
						if err != nil {
							return nil, err
						}
						args = append(args, a)
					}
					if !p.accept(tokComma, "") {
						break
					}
				}
			}
			if _, err := p.expect(tokRParen, ""); err != nil {
				return nil, err
			}
			return call{fn: t.text, args: args}, nil
		}
		// qualified column?
		if p.accept(tokDot, "") {
			name, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return colRef{qualifier: t.text, name: name.text}, nil
		}
		return colRef{name: t.text}, nil
	}
	return nil, fmt.Errorf("%w: unexpected %q at position %d", ErrSyntax, t.text, t.pos)
}
