package db

import (
	"context"
	"errors"
	"testing"
	"time"

	"movingdb/internal/obs"
	"movingdb/internal/workload"
)

// numbersCatalog builds two relations whose cross product is large
// enough that the evaluation loop passes many cancellation checkpoints.
func numbersCatalog(n int) Catalog {
	a := NewRelation("a", Schema{{Name: "x", Type: TReal}})
	b := NewRelation("b", Schema{{Name: "y", Type: TReal}})
	for i := 0; i < n; i++ {
		a.MustInsert(Tuple{float64(i)})
		b.MustInsert(Tuple{float64(i)})
	}
	return Catalog{"a": a, "b": b}
}

func TestQueryContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := QueryContext(ctx, numbersCatalog(4), "SELECT x FROM a")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestQueryContextDeadlineStopsCrossProduct(t *testing.T) {
	cat := numbersCatalog(2000) // 4M-row cross product: far beyond the deadline
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := QueryContext(ctx, cat, "SELECT x, y FROM a, b WHERE x + y > 1")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, not bounded", elapsed)
	}
}

func TestQueryContextAggregateCancel(t *testing.T) {
	cat := numbersCatalog(2000)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := QueryContext(ctx, cat, "SELECT count(*) FROM a, b")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("aggregate err = %v, want context.DeadlineExceeded", err)
	}
}

func TestQueryContextBackgroundMatchesQuery(t *testing.T) {
	cat := numbersCatalog(10)
	want, err := Query(cat, "SELECT x FROM a WHERE x > 5")
	if err != nil {
		t.Fatal(err)
	}
	got, err := QueryContext(context.Background(), cat, "SELECT x FROM a WHERE x > 5")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("rows = %d, want %d", got.Len(), want.Len())
	}
}

func TestQueryContextRecordsOperatorTimings(t *testing.T) {
	cat := testCatalog(t)
	m := obs.New(0)
	ctx := obs.NewContext(context.Background(), m)
	res, err := QueryContext(ctx, cat, "SELECT id, length(trajectory(flight)) AS len FROM planes")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("no rows")
	}
	ops := m.Snapshot().Operators
	if ops["trajectory"].Count == 0 || ops["length"].Count == 0 {
		t.Fatalf("operator timings missing: %v", ops)
	}
	if ops["trajectory"].Count != int64(res.Len()) {
		t.Errorf("trajectory count = %d, rows = %d", ops["trajectory"].Count, res.Len())
	}
}

func TestQueryContextDeadlineDuringInside(t *testing.T) {
	// The deadline expires while the evaluator is inside the lifted
	// `inside` kernels of a plane×storm cross product, so cancellation
	// must be observed by the operators themselves, not only at entry.
	planes := NewRelation("planes", Schema{
		{Name: "id", Type: TString},
		{Name: "flight", Type: TMPoint},
	})
	for _, f := range workload.New(7).Flights(40, 400) {
		planes.MustInsert(Tuple{f.ID, f.Flight})
	}
	storms := NewRelation("storms", Schema{
		{Name: "name", Type: TString},
		{Name: "extent", Type: TMRegion},
	})
	g := workload.New(8)
	for i := 0; i < 40; i++ {
		storms.MustInsert(Tuple{"S", g.Storm(0, 120, 10, 4)})
	}
	cat := Catalog{"planes": planes, "storms": storms}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := QueryContext(ctx, cat, "SELECT name FROM planes, storms WHERE sometimes(inside(flight, extent))")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
