package db

import (
	"context"
	"fmt"
	"strconv"
	"strings"
)

// Canonical re-renders a query string into one canonical spelling:
// keywords uppercased, numbers in shortest round-trip form, strings
// single-quoted, and whitespace normalised to single separators. Two
// requests that differ only in case, spacing or numeric spelling
// ("0.50" vs ".5e0") canonicalise to the same string, so the serving
// layer can use the result as a cache-key component and as ETag input
// without equivalent queries fragmenting the cache.
//
// Canonicalisation is lexical only — it does not parse, so it accepts
// some strings the parser later rejects. That is sound for cache keys:
// a canonical form maps to exactly one evaluation outcome, whether that
// outcome is a result or a syntax error. Lexing failures are reported
// as ErrSyntax.
func Canonical(q string) (string, error) {
	toks, err := lex(q)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrSyntax, err)
	}
	var b strings.Builder
	b.Grow(len(q))
	prev := token{kind: tokEOF}
	for _, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if needSpace(prev, t) {
			b.WriteByte(' ')
		}
		switch t.kind {
		case tokNumber:
			b.WriteString(strconv.FormatFloat(t.num, 'g', -1, 64))
		case tokString:
			b.WriteByte('\'')
			b.WriteString(t.text)
			b.WriteByte('\'')
		default:
			// Keywords are already uppercased by the lexer; idents and
			// punctuation pass through verbatim.
			b.WriteString(t.text)
		}
		prev = t
	}
	return b.String(), nil
}

// needSpace decides whether a separator goes between two adjacent
// tokens in the canonical rendering. Punctuation binds tightly
// (no space around '.', none before ',' or ')', none after '('); word
// and operator tokens are separated by single spaces.
func needSpace(prev, next token) bool {
	if prev.kind == tokEOF {
		return false
	}
	switch {
	case prev.kind == tokLParen || prev.kind == tokDot:
		return false
	case next.kind == tokComma || next.kind == tokRParen || next.kind == tokDot:
		return false
	case next.kind == tokLParen && prev.kind == tokIdent:
		// Function application: length(route), not length (route).
		return false
	}
	return true
}

// Snapshot pins a catalog to the ingestion epoch it was derived from.
// Every relation reachable through the catalog must be immutable — in
// the serving layer they are materialised from one ingest.Epoch — so a
// query result against a Snapshot is a pure function of
// (canonical query, Epoch). That purity is what makes (query, epoch)
// a sound cache key and a sound ETag.
type Snapshot struct {
	Catalog Catalog // moguard: immutable // relations materialised from one epoch
	Epoch   uint64  // moguard: immutable
}

// QueryContext evaluates sql against the pinned catalog.
func (s Snapshot) QueryContext(ctx context.Context, sql string) (*Relation, error) {
	return QueryContext(ctx, s.Catalog, sql)
}
