package db

import (
	"errors"
	"math"
	"testing"

	"movingdb/internal/geom"
	"movingdb/internal/moving"
	"movingdb/internal/spatial"
	"movingdb/internal/storage"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
	"movingdb/internal/workload"
)

func planesRelation(t *testing.T, n int) *Relation {
	t.Helper()
	rel := NewRelation("planes", Schema{
		{Name: "airline", Type: TString},
		{Name: "id", Type: TString},
		{Name: "flight", Type: TMPoint},
	})
	g := workload.New(7)
	for _, f := range g.Flights(n, 100) {
		rel.MustInsert(Tuple{f.Airline, f.ID, f.Flight})
	}
	return rel
}

func TestInsertTypeChecking(t *testing.T) {
	rel := NewRelation("r", Schema{{Name: "a", Type: TString}, {Name: "b", Type: TReal}})
	if err := rel.Insert(Tuple{"x", 1.5}); err != nil {
		t.Fatal(err)
	}
	if err := rel.Insert(Tuple{"x"}); !errors.Is(err, ErrSchema) {
		t.Error("arity violation accepted")
	}
	if err := rel.Insert(Tuple{"x", "not a real"}); !errors.Is(err, ErrSchema) {
		t.Error("type violation accepted")
	}
	if rel.Len() != 1 {
		t.Errorf("Len = %d", rel.Len())
	}
}

func TestQuery1LufthansaLongFlights(t *testing.T) {
	// SELECT airline, id FROM planes
	// WHERE airline = "Lufthansa" AND length(trajectory(flight)) > L
	rel := planesRelation(t, 60)
	const minLen = 400.0
	res := rel.Select(func(tu Tuple) bool {
		if Get[string](rel, tu, "airline") != "Lufthansa" {
			return false
		}
		return Get[moving.MPoint](rel, tu, "flight").Trajectory().Length() > minLen
	})
	proj, err := res.Project("airline", "id")
	if err != nil {
		t.Fatal(err)
	}
	if proj.Len() == 0 {
		t.Fatal("no qualifying flights; workload too small?")
	}
	// Verify every result row truly qualifies and no qualifying row is
	// missing.
	want := 0
	for _, tu := range rel.Scan() {
		if Get[string](rel, tu, "airline") == "Lufthansa" &&
			Get[moving.MPoint](rel, tu, "flight").Length() > minLen {
			want++
		}
	}
	if proj.Len() != want {
		t.Errorf("result rows = %d, want %d", proj.Len(), want)
	}
	for _, tu := range proj.Scan() {
		if proj.Schema.Index("flight") >= 0 {
			t.Error("projection kept flight column")
		}
		_ = tu
	}
}

func TestQuery2ClosePairsJoin(t *testing.T) {
	// SELECT ... FROM planes p, planes q
	// WHERE val(initial(atmin(distance(p.flight, q.flight)))) < d
	rel := planesRelation(t, 25)
	const maxDist = 30.0
	joined := rel.Join(rel, func(a, b Tuple) bool {
		pa := Get[moving.MPoint](rel, a, "flight")
		pb := Get[moving.MPoint](rel, b, "flight")
		ida := Get[string](rel, a, "id")
		idb := Get[string](rel, b, "id")
		if ida >= idb { // avoid self-pairs and symmetric duplicates
			return false
		}
		d := pa.Distance(pb)
		first, ok := d.AtMin().Initial()
		return ok && first.Val < maxDist
	})
	// Cross-check with a direct minimum computation.
	want := 0
	tuples := rel.Scan()
	for i := range tuples {
		for j := range tuples {
			ida := Get[string](rel, tuples[i], "id")
			idb := Get[string](rel, tuples[j], "id")
			if ida >= idb {
				continue
			}
			d := Get[moving.MPoint](rel, tuples[i], "flight").Distance(Get[moving.MPoint](rel, tuples[j], "flight"))
			if mn, _, ok := d.Min(); ok && mn < maxDist {
				want++
			}
		}
	}
	if joined.Len() != want {
		t.Errorf("join rows = %d, want %d", joined.Len(), want)
	}
	// Join schema disambiguates clashing names.
	if joined.Schema.Index("planes.airline") < 0 {
		t.Errorf("join schema = %v", joined.Schema)
	}
}

func TestExtend(t *testing.T) {
	rel := planesRelation(t, 10)
	ext := rel.Extend("len", TReal, func(tu Tuple) any {
		return Get[moving.MPoint](rel, tu, "flight").Length()
	})
	if ext.Schema.Index("len") != 3 {
		t.Fatalf("schema = %v", ext.Schema)
	}
	for _, tu := range ext.Scan() {
		l := Get[float64](ext, tu, "len")
		if l <= 0 || math.IsNaN(l) {
			t.Errorf("len = %v", l)
		}
	}
}

func TestStoredRelationRoundTrip(t *testing.T) {
	rel := planesRelation(t, 20)
	ps := storage.NewPageStore()
	stored, err := StoreRelation(rel, ps)
	if err != nil {
		t.Fatal(err)
	}
	if stored.Len() != rel.Len() {
		t.Fatalf("stored rows = %d", stored.Len())
	}
	back, err := stored.Load()
	if err != nil {
		t.Fatal(err)
	}
	for i, tu := range back.Scan() {
		orig := rel.Scan()[i]
		if Get[string](back, tu, "id") != Get[string](rel, orig, "id") {
			t.Fatal("id mismatch after storage round trip")
		}
		p1 := Get[moving.MPoint](back, tu, "flight")
		p2 := Get[moving.MPoint](rel, orig, "flight")
		if p1.M.Len() != p2.M.Len() {
			t.Fatal("unit count mismatch after round trip")
		}
		mid, _ := p2.DefTime().MinInstant()
		if p1.AtInstant(mid) != p2.AtInstant(mid) {
			t.Fatal("position mismatch after round trip")
		}
	}
	if stored.InlineBytes() == 0 {
		t.Error("no inline bytes accounted")
	}
}

func TestStoredRelationWithRegions(t *testing.T) {
	g := workload.New(11)
	rel := NewRelation("storms", Schema{
		{Name: "name", Type: TString},
		{Name: "area", Type: TMRegion},
	})
	for i := 0; i < 3; i++ {
		rel.MustInsert(Tuple{string(rune('A' + i)), g.Storm(0, 10, 8, 5)})
	}
	ps := storage.NewPageStore()
	stored, err := StoreRelation(rel, ps)
	if err != nil {
		t.Fatal(err)
	}
	back, err := stored.Load()
	if err != nil {
		t.Fatal(err)
	}
	for i, tu := range back.Scan() {
		mr := Get[moving.MRegion](back, tu, "area")
		orig := Get[moving.MRegion](rel, rel.Scan()[i], "area")
		r1, ok1 := mr.AtInstant(25)
		r2, ok2 := orig.AtInstant(25)
		if ok1 != ok2 || math.Abs(r1.Area()-r2.Area()) > 1e-9 {
			t.Fatalf("region snapshot mismatch after round trip")
		}
	}
	// Storm units are large enough to spill externally.
	if stored.ExternalPages() == 0 {
		t.Error("moving regions did not spill to the page store")
	}
	_ = geom.Pt(0, 0)
}

func TestStoredRelationAllTypes(t *testing.T) {
	// Every attribute type survives the storage round trip inside a
	// relation.
	rel := NewRelation("everything", Schema{
		{Name: "s", Type: TString},
		{Name: "i", Type: TInt},
		{Name: "r", Type: TReal},
		{Name: "b", Type: TBool},
		{Name: "per", Type: TPeriods},
		{Name: "reg", Type: TRegion},
		{Name: "lin", Type: TLine},
		{Name: "pts", Type: TPoints},
		{Name: "mp", Type: TMPoint},
		{Name: "mr", Type: TMRegion},
		{Name: "mrl", Type: TMReal},
		{Name: "mb", Type: TMBool},
		{Name: "mps", Type: TMPoints},
		{Name: "ml", Type: TMLine},
	})
	iv := temporal.Closed(0, 9)
	mp, _ := moving.MPointFromSamples([]moving.Sample{
		{T: 0, P: geom.Pt(0, 0)}, {T: 9, P: geom.Pt(9, 9)},
	})
	var mc units.MCycle
	for _, p := range spatial.Ring(0, 0, 8, 0, 8, 8, 0, 8) {
		mc = append(mc, units.MPoint{X0: p.X, X1: 1, Y0: p.Y})
	}
	mr := moving.MustMRegion(units.MustURegion(iv, units.MFace{Outer: mc}))
	a := units.MPoint{X0: 0, X1: 1}
	bm := units.MPoint{X0: 0, X1: 1, Y0: 5}
	mps := moving.MustMPoints(units.MustUPoints(iv, a, bm))
	ml := moving.MustMLine(units.MustULine(iv, units.MustMSeg(a, bm)))

	rel.MustInsert(Tuple{
		"hello", int64(-7), 2.5, true,
		temporal.MustPeriods(temporal.Closed(0, 2), temporal.Closed(5, 7)),
		spatial.MustPolygonRegion(spatial.Ring(0, 0, 4, 0, 4, 4, 0, 4)),
		spatial.MustLine(geom.Seg(0, 0, 1, 1)),
		spatial.NewPoints(geom.Pt(1, 2), geom.Pt(3, 4)),
		mp, mr,
		moving.MustMReal(units.NewUReal(iv, 1, 0, 0, false)),
		moving.MustMBool(units.UBool{Iv: iv, V: true}),
		mps, ml,
	})
	ps := storage.NewPageStore()
	stored, err := StoreRelation(rel, ps)
	if err != nil {
		t.Fatal(err)
	}
	back, err := stored.Load()
	if err != nil {
		t.Fatal(err)
	}
	tu := back.Scan()[0]
	if Get[string](back, tu, "s") != "hello" || Get[int64](back, tu, "i") != -7 ||
		Get[float64](back, tu, "r") != 2.5 || !Get[bool](back, tu, "b") {
		t.Error("base attributes lost")
	}
	if !Get[temporal.Periods](back, tu, "per").Contains(6) {
		t.Error("periods lost")
	}
	if Get[spatial.Region](back, tu, "reg").Area() != 16 {
		t.Error("region lost")
	}
	if Get[spatial.Points](back, tu, "pts").Len() != 2 {
		t.Error("points lost")
	}
	if got := Get[moving.MPoint](back, tu, "mp").AtInstant(4.5); got.P != geom.Pt(4.5, 4.5) {
		t.Errorf("mpoint lost: %v", got)
	}
	if snap, ok := Get[moving.MRegion](back, tu, "mr").AtInstant(3); !ok || snap.Area() != 64 {
		t.Error("mregion lost")
	}
	if got, ok := Get[moving.MPoints](back, tu, "mps").AtInstant(3); !ok || got.Len() != 2 {
		t.Error("mpoints lost")
	}
	if got, ok := Get[moving.MLine](back, tu, "ml").AtInstant(3); !ok || got.NumSegments() != 1 {
		t.Error("mline lost")
	}
}
