package db

import "fmt"

// expr is a parsed expression node.
type expr interface {
	fmt.Stringer
}

type numLit struct{ v float64 }

func (e numLit) String() string { return fmt.Sprintf("%g", e.v) }

type strLit struct{ v string }

func (e strLit) String() string { return fmt.Sprintf("%q", e.v) }

type boolLit struct{ v bool }

func (e boolLit) String() string { return fmt.Sprintf("%v", e.v) }

// colRef is a column reference, optionally qualified by a relation
// alias: "flight" or "p.flight".
type colRef struct {
	qualifier string // "" when unqualified
	name      string
}

func (e colRef) String() string {
	if e.qualifier == "" {
		return e.name
	}
	return e.qualifier + "." + e.name
}

// call is an operation application, e.g. length(trajectory(flight)).
type call struct {
	fn   string
	args []expr
}

func (e call) String() string {
	s := e.fn + "("
	for i, a := range e.args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}

// binop is a comparison, boolean connective or arithmetic operation.
type binop struct {
	op   string // < > <= >= = <> AND OR + - * /
	l, r expr
}

func (e binop) String() string { return fmt.Sprintf("(%s %s %s)", e.l, e.op, e.r) }

type notop struct{ e expr }

func (e notop) String() string { return fmt.Sprintf("(NOT %s)", e.e) }

type negop struct{ e expr }

func (e negop) String() string { return fmt.Sprintf("(-%s)", e.e) }

// selectItem is one projection of the SELECT list.
type selectItem struct {
	e     expr
	alias string // "" → derived name
}

// fromItem is one relation in the FROM list with an optional alias.
type fromItem struct {
	rel   string
	alias string
}

// orderItem is one ORDER BY key.
type orderItem struct {
	e    expr
	desc bool
}

// selectStmt is a parsed query.
type selectStmt struct {
	items   []selectItem
	star    bool
	from    []fromItem
	where   expr // nil when absent
	groupBy []colRef
	orderBy []orderItem
	limit   int // -1 when absent
}
