package db

import (
	"errors"
	"math"
	"strings"
	"testing"

	"movingdb/internal/geom"
	"movingdb/internal/moving"
	"movingdb/internal/spatial"
	"movingdb/internal/temporal"
	"movingdb/internal/workload"
)

func testCatalog(t *testing.T) Catalog {
	t.Helper()
	planes := NewRelation("planes", Schema{
		{Name: "airline", Type: TString},
		{Name: "id", Type: TString},
		{Name: "flight", Type: TMPoint},
	})
	for _, f := range workload.New(2000).Flights(30, 200) {
		planes.MustInsert(Tuple{f.Airline, f.ID, f.Flight})
	}
	storms := NewRelation("storms", Schema{
		{Name: "name", Type: TString},
		{Name: "extent", Type: TMRegion},
	})
	g := workload.New(77)
	storms.MustInsert(Tuple{"Klaus", g.Storm(0, 30, 10, 10)})
	storms.MustInsert(Tuple{"Lothar", g.Storm(50, 30, 12, 10)})
	return Catalog{"planes": planes, "storms": storms}
}

func TestLexer(t *testing.T) {
	toks, err := lex(`SELECT a.b, length(x) FROM r WHERE a <> 'it''s' AND v >= 1.5e2`)
	if err == nil {
		// 'it''s' lexes as 'it' followed by 's' — acceptable for this
		// dialect; just ensure the full token stream terminates.
		if toks[len(toks)-1].kind != tokEOF {
			t.Error("missing EOF token")
		}
	}
	if _, err := lex(`SELECT 'unterminated`); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("SELECT @"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestParserErrors(t *testing.T) {
	for _, q := range []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM r WHERE",
		"SELECT f( FROM r",
		"SELECT a FROM r extra garbage ,",
	} {
		if _, err := parseQuery(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
}

func TestQuery1Paper(t *testing.T) {
	// The first query of Section 2, verbatim shape.
	cat := testCatalog(t)
	res, err := Query(cat, `
		SELECT airline, id
		FROM planes
		WHERE airline = 'Lufthansa' AND length(trajectory(flight)) > 500`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.String() != "(airline: string, id: string)" {
		t.Errorf("schema = %v", res.Schema)
	}
	// Cross-check against direct evaluation.
	planes := cat["planes"]
	want := 0
	for _, tu := range planes.Scan() {
		if Get[string](planes, tu, "airline") == "Lufthansa" &&
			Get[moving.MPoint](planes, tu, "flight").Length() > 500 {
			want++
		}
	}
	if res.Len() != want {
		t.Errorf("rows = %d, want %d", res.Len(), want)
	}
	for _, tu := range res.Scan() {
		if tu[0].(string) != "Lufthansa" {
			t.Errorf("non-Lufthansa row %v", tu)
		}
	}
}

func TestQuery2PaperJoin(t *testing.T) {
	// The spatio-temporal join of Section 2, verbatim shape.
	cat := testCatalog(t)
	res, err := Query(cat, `
		SELECT p.airline, p.id, q.airline, q.id
		FROM planes p, planes q
		WHERE p.id < q.id
		  AND val(initial(atmin(distance(p.flight, q.flight)))) < 25`)
	if err != nil {
		t.Fatal(err)
	}
	planes := cat["planes"]
	want := 0
	for _, a := range planes.Scan() {
		for _, b := range planes.Scan() {
			if Get[string](planes, a, "id") >= Get[string](planes, b, "id") {
				continue
			}
			d := Get[moving.MPoint](planes, a, "flight").Distance(Get[moving.MPoint](planes, b, "flight"))
			if first, ok := d.AtMin().Initial(); ok && first.Val < 25 {
				want++
			}
		}
	}
	if res.Len() != want {
		t.Errorf("rows = %d, want %d", res.Len(), want)
	}
	// Duplicate output names get disambiguated.
	if res.Schema[0].Name == res.Schema[2].Name {
		t.Errorf("duplicate column names in %v", res.Schema)
	}
}

func TestQueryStormJoin(t *testing.T) {
	cat := testCatalog(t)
	res, err := Query(cat, `
		SELECT s.name, p.id, duration(inside(p.flight, s.extent)) AS exposure
		FROM planes p, storms s
		WHERE sometimes(inside(p.flight, s.extent))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Index("exposure") != 2 || res.Schema[2].Type != TReal {
		t.Fatalf("schema = %v", res.Schema)
	}
	for _, tu := range res.Scan() {
		if tu[2].(float64) <= 0 {
			t.Errorf("zero exposure row %v", tu)
		}
	}
}

func TestQueryStar(t *testing.T) {
	cat := testCatalog(t)
	res, err := Query(cat, "SELECT * FROM storms")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || len(res.Schema) != 2 {
		t.Errorf("star = %v (%d rows)", res.Schema, res.Len())
	}
	if res.Schema[1].Type != TMRegion {
		t.Error("mregion column lost its type")
	}
}

func TestQueryExpressions(t *testing.T) {
	cat := testCatalog(t)
	res, err := Query(cat, `
		SELECT id, travelled(flight) - length(trajectory(flight)) AS backtrack,
		       max(speed(flight)) AS vmax
		FROM planes
		WHERE NOT (airline = 'ANA' OR airline = 'Qantas') AND max(speed(flight)) >= 5`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range res.Scan() {
		if tu[1].(float64) < -1e-6 {
			t.Errorf("negative backtrack %v", tu[1])
		}
		if tu[2].(float64) < 5 {
			t.Errorf("speed filter leaked %v", tu[2])
		}
	}
	// Arithmetic, negation, parens, booleans.
	res, err = Query(cat, `SELECT -(1 + 2 * 3) / 7 AS v, TRUE AS t FROM storms WHERE name <> ''`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || res.Scan()[0][0].(float64) != -1 || res.Scan()[0][1].(bool) != true {
		t.Errorf("expr result = %v", res.Scan())
	}
}

func TestQueryTypeErrors(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		q    string
		want error
	}{
		{"SELECT nosuch FROM planes", ErrType},
		{"SELECT id FROM planes WHERE id", ErrType},
		{"SELECT id FROM planes WHERE length(flight) > 1", ErrType},
		{"SELECT id FROM planes WHERE frobnicate(flight)", ErrNoFunction},
		{"SELECT initial(speed(flight)) FROM planes", ErrType},
		{"SELECT id FROM planes WHERE id + 1 > 0", ErrType},
		{"SELECT id FROM nosuchrel", ErrSchema},
		{"SELECT p.id FROM planes p, planes q WHERE id = 'x'", ErrType}, // ambiguous
		{"SELECT flight = flight FROM planes", ErrType},                 // no mpoint comparison
	}
	for _, c := range cases {
		_, err := Query(cat, c.q)
		if !errors.Is(err, c.want) {
			t.Errorf("%q: err = %v, want %v", c.q, err, c.want)
		}
	}
}

func TestQueryDivisionByZero(t *testing.T) {
	cat := testCatalog(t)
	if _, err := Query(cat, "SELECT 1/0 AS x FROM storms"); err == nil {
		t.Error("division by zero accepted")
	}
}

func TestQueryWhenRestriction(t *testing.T) {
	// when(flight, inside(...)) returns a restricted mpoint usable in
	// further operations within the query.
	cat := testCatalog(t)
	res, err := Query(cat, `
		SELECT p.id, length(trajectory(when(p.flight, inside(p.flight, s.extent)))) AS inlen
		FROM planes p, storms s
		WHERE sometimes(inside(p.flight, s.extent))`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range res.Scan() {
		if v := tu[1].(float64); v < 0 || math.IsNaN(v) {
			t.Errorf("bad restricted length %v", v)
		}
	}
}

func TestQueryAgainstHandBuilt(t *testing.T) {
	// A fully deterministic micro-catalog where results are computable
	// by hand.
	trips := NewRelation("trips", Schema{
		{Name: "name", Type: TString},
		{Name: "path", Type: TMPoint},
	})
	mk := func(coords ...float64) moving.MPoint {
		var ss []moving.Sample
		for i := 0; i+2 < len(coords); i += 3 {
			ss = append(ss, moving.Sample{T: temporal.Instant(coords[i]), P: geom.Pt(coords[i+1], coords[i+2])})
		}
		p, err := moving.MPointFromSamples(ss)
		if err != nil {
			panic(err)
		}
		return p
	}
	trips.MustInsert(Tuple{"straight", mk(0, 0, 0, 10, 10, 0)})
	trips.MustInsert(Tuple{"bent", mk(0, 0, 0, 10, 10, 0, 20, 10, 10)})
	cat := Catalog{"trips": trips}

	res, err := Query(cat, `SELECT name FROM trips WHERE length(trajectory(path)) > 15`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Scan()[0][0].(string) != "bent" {
		t.Errorf("result = %v", res.Scan())
	}

	res, err = Query(cat, `SELECT name, duration(deftime(path)) AS dur FROM trips`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scan()[0][1].(float64) != 10 || res.Scan()[1][1].(float64) != 20 {
		t.Errorf("durations = %v", res.Scan())
	}

	// Self-join: closest approach of the two trips is 0 (equal prefix).
	res, err = Query(cat, `
		SELECT a.name, b.name
		FROM trips a, trips b
		WHERE a.name < b.name AND val(initial(atmin(distance(a.path, b.path)))) < 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("join rows = %d", res.Len())
	}
}

func TestQueryKeywordCase(t *testing.T) {
	cat := testCatalog(t)
	if _, err := Query(cat, "select id from planes where airline = 'ANA'"); err != nil {
		t.Errorf("lowercase keywords rejected: %v", err)
	}
}

func TestExprString(t *testing.T) {
	stmt, err := parseQuery("SELECT val(initial(atmin(distance(p.flight, q.flight)))) FROM planes p, planes q")
	if err != nil {
		t.Fatal(err)
	}
	got := stmt.items[0].e.String()
	if !strings.Contains(got, "atmin(distance(p.flight, q.flight))") {
		t.Errorf("String = %q", got)
	}
}

func TestQueryRegionSetOps(t *testing.T) {
	zones := NewRelation("zones", Schema{
		{Name: "name", Type: TString},
		{Name: "shape", Type: TRegion},
	})
	mkSq := func(x, y, w float64) spatial.Region {
		return spatial.MustPolygonRegion(spatial.Ring(x, y, x+w, y, x+w, y+w, x, y+w))
	}
	zones.MustInsert(Tuple{"a", mkSq(0, 0, 4)})
	zones.MustInsert(Tuple{"b", mkSq(2, 0, 4)})
	cat := Catalog{"zones": zones}
	res, err := Query(cat, `
		SELECT x.name, y.name, area(intersection(x.shape, y.shape)) AS shared
		FROM zones x, zones y
		WHERE x.name < y.name AND intersects(x.shape, y.shape)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d", res.Len())
	}
	if got := res.Scan()[0][2].(float64); got != 8 {
		t.Errorf("shared area = %v", got)
	}
	res, err = Query(cat, `
		SELECT area(union(x.shape, y.shape)) AS total
		FROM zones x, zones y
		WHERE x.name = 'a' AND y.name = 'b'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scan()[0][0].(float64); got != 24 {
		t.Errorf("union area = %v", got)
	}
}

func TestQueryUndefSemantics(t *testing.T) {
	// Flights with disjoint definition times: distance is nowhere
	// defined, initial/atmin yield ⊥, the comparison is false and the
	// row is filtered — never an error (SQL NULL discipline).
	trips := NewRelation("trips", Schema{
		{Name: "name", Type: TString},
		{Name: "path", Type: TMPoint},
	})
	mk := func(t0, t1 float64) moving.MPoint {
		p, err := moving.MPointFromSamples([]moving.Sample{
			{T: temporal.Instant(t0), P: geom.Pt(0, 0)},
			{T: temporal.Instant(t1), P: geom.Pt(10, 0)},
		})
		if err != nil {
			panic(err)
		}
		return p
	}
	trips.MustInsert(Tuple{"early", mk(0, 10)})
	trips.MustInsert(Tuple{"late", mk(100, 110)})
	cat := Catalog{"trips": trips}
	res, err := Query(cat, `
		SELECT a.name, b.name
		FROM trips a, trips b
		WHERE a.name < b.name
		  AND val(initial(atmin(distance(a.path, b.path)))) < 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("disjoint-deftime pair passed the filter: %v", res.Scan())
	}
	// ⊥ in a SELECT item surfaces as a schema violation at insert.
	if _, err := Query(cat, `
		SELECT val(initial(atmin(distance(a.path, b.path)))) AS d
		FROM trips a, trips b
		WHERE a.name < b.name`); err == nil {
		t.Error("⊥ in SELECT accepted")
	}
}

func TestQueryOrderByLimit(t *testing.T) {
	cat := testCatalog(t)
	res, err := Query(cat, `
		SELECT id, length(trajectory(flight)) AS len
		FROM planes
		ORDER BY length(trajectory(flight)) DESC, id
		LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Fatalf("rows = %d", res.Len())
	}
	prev := math.Inf(1)
	for _, tu := range res.Scan() {
		l := tu[1].(float64)
		if l > prev {
			t.Fatalf("not descending: %v after %v", l, prev)
		}
		prev = l
	}
	// Ascending by string with limit beyond size.
	res, err = Query(cat, `SELECT id FROM planes ORDER BY id LIMIT 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != cat["planes"].Len() {
		t.Fatalf("limit clipped: %d", res.Len())
	}
	for i := 1; i < res.Len(); i++ {
		if res.Scan()[i][0].(string) < res.Scan()[i-1][0].(string) {
			t.Fatal("not ascending")
		}
	}
	// ORDER BY on a non-orderable type is a type error.
	if _, err := Query(cat, `SELECT id FROM planes ORDER BY flight`); !errors.Is(err, ErrType) {
		t.Errorf("order by mpoint accepted: %v", err)
	}
	// Bad LIMIT.
	if _, err := Query(cat, `SELECT id FROM planes LIMIT 2.5`); !errors.Is(err, ErrSyntax) {
		t.Errorf("fractional limit accepted: %v", err)
	}
}

func TestQueryOrderByAlias(t *testing.T) {
	cat := testCatalog(t)
	res, err := Query(cat, `
		SELECT id, length(trajectory(flight)) AS len
		FROM planes ORDER BY len LIMIT 4`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < res.Len(); i++ {
		if res.Scan()[i][1].(float64) < res.Scan()[i-1][1].(float64) {
			t.Fatal("alias ordering not ascending")
		}
	}
}

func TestQueryAggregates(t *testing.T) {
	cat := testCatalog(t)
	// Global aggregates.
	res, err := Query(cat, `SELECT count(*) AS n, avg(length(trajectory(flight))) AS meanlen FROM planes`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d", res.Len())
	}
	if res.Scan()[0][0].(int64) != int64(cat["planes"].Len()) {
		t.Errorf("count = %v", res.Scan()[0][0])
	}
	var sum float64
	planes := cat["planes"]
	for _, tu := range planes.Scan() {
		sum += Get[moving.MPoint](planes, tu, "flight").Length()
	}
	wantMean := sum / float64(planes.Len())
	if got := res.Scan()[0][1].(float64); math.Abs(got-wantMean) > 1e-9 {
		t.Errorf("avg = %v, want %v", got, wantMean)
	}

	// GROUP BY with count, min, max, sum; ordered by count.
	res, err = Query(cat, `
		SELECT airline, count(*) AS n,
		       max(length(trajectory(flight))) AS longest,
		       min(id) AS firstid
		FROM planes
		GROUP BY airline
		ORDER BY n DESC, airline`)
	if err != nil {
		t.Fatal(err)
	}
	// Verify group counts against a manual tally.
	tally := map[string]int64{}
	for _, tu := range planes.Scan() {
		tally[Get[string](planes, tu, "airline")]++
	}
	if res.Len() != len(tally) {
		t.Fatalf("groups = %d, want %d", res.Len(), len(tally))
	}
	prev := int64(1 << 62)
	for _, tu := range res.Scan() {
		airline := tu[0].(string)
		n := tu[1].(int64)
		if n != tally[airline] {
			t.Errorf("%s count = %d, want %d", airline, n, tally[airline])
		}
		if n > prev {
			t.Error("not ordered by count desc")
		}
		prev = n
		if tu[3].(string) == "" {
			t.Error("min(id) empty")
		}
	}

	// WHERE filters before grouping.
	res, err = Query(cat, `SELECT count(*) AS n FROM planes WHERE airline = 'Lufthansa'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scan()[0][0].(int64) != tally["Lufthansa"] {
		t.Errorf("filtered count = %v", res.Scan()[0][0])
	}

	// Aggregate over an empty set: count is 0; avg errors.
	res, err = Query(cat, `SELECT count(*) AS n FROM planes WHERE airline = 'NoSuch'`)
	if err != nil || res.Scan()[0][0].(int64) != 0 {
		t.Errorf("empty count = %v, %v", res.Scan(), err)
	}
	if _, err := Query(cat, `SELECT avg(length(trajectory(flight))) AS m FROM planes WHERE airline = 'NoSuch'`); err == nil {
		t.Error("avg over empty set accepted")
	}

	// Type errors.
	if _, err := Query(cat, `SELECT id, count(*) AS n FROM planes GROUP BY airline`); !errors.Is(err, ErrType) {
		t.Error("non-grouped column accepted")
	}
	if _, err := Query(cat, `SELECT count(*) AS n FROM planes GROUP BY flight`); !errors.Is(err, ErrType) {
		t.Error("grouping by mpoint accepted")
	}
	if _, err := Query(cat, `SELECT length(*) FROM planes`); !errors.Is(err, ErrType) {
		t.Error("stray * accepted")
	}
	// min on mreal in scalar mode still works (not hijacked by aggregates).
	res, err = Query(cat, `SELECT id, min(speed(flight)) AS slowest FROM planes LIMIT 2`)
	if err != nil {
		t.Fatalf("scalar min broken: %v", err)
	}
	if res.Len() != 2 {
		t.Errorf("scalar-mode rows = %d", res.Len())
	}
}
