package db

import (
	"context"
	"errors"
	"testing"
)

func TestCanonicalNormalises(t *testing.T) {
	cases := []struct{ a, b string }{
		{"select * from flights", "SELECT   *   FROM flights"},
		{"SELECT id FROM f WHERE x = 0.50", "select id from f where x=0.5e0"},
		{"SELECT length(f.route) FROM flights AS f", "select length( f . route )  from flights as f"},
		{`SELECT id FROM f WHERE name = "LH 257"`, "SELECT id FROM f WHERE name = 'LH 257'"},
		{"SELECT a+b, c FROM r", "select a + b , c from r"},
	}
	for _, c := range cases {
		ca, err := Canonical(c.a)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", c.a, err)
		}
		cb, err := Canonical(c.b)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", c.b, err)
		}
		if ca != cb {
			t.Errorf("equivalent queries canonicalised apart:\n %q -> %q\n %q -> %q", c.a, ca, c.b, cb)
		}
	}
}

func TestCanonicalDistinguishes(t *testing.T) {
	a, _ := Canonical("SELECT id FROM f WHERE x = 1")
	b, _ := Canonical("SELECT id FROM f WHERE x = 2")
	if a == b {
		t.Fatalf("distinct queries collapsed to %q", a)
	}
	// Identifier case is significant (column names are case-sensitive).
	a, _ = Canonical("SELECT Id FROM f")
	b, _ = Canonical("SELECT id FROM f")
	if a == b {
		t.Fatal("identifier case was erased")
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	q := "select  id ,  length( route )  from flights where dist <= 52.8"
	once, err := Canonical(q)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := Canonical(once)
	if err != nil {
		t.Fatal(err)
	}
	if once != twice {
		t.Fatalf("not idempotent:\n once  %q\n twice %q", once, twice)
	}
}

func TestCanonicalSyntaxError(t *testing.T) {
	if _, err := Canonical("SELECT 'unterminated"); !errors.Is(err, ErrSyntax) {
		t.Fatalf("err = %v, want ErrSyntax", err)
	}
}

func TestSnapshotQueryContext(t *testing.T) {
	r := NewRelation("nums", Schema{{Name: "n", Type: TReal}})
	r.MustInsert(Tuple{1.0})
	r.MustInsert(Tuple{5.0})
	s := Snapshot{Catalog: Catalog{"nums": r}, Epoch: 42}
	out, err := s.QueryContext(context.Background(), "SELECT n FROM nums WHERE n > 2")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || Get[float64](out, out.Scan()[0], "n") != 5 {
		t.Fatalf("snapshot query returned %v", out.Scan())
	}
}
