package db

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"movingdb/internal/base"
	"movingdb/internal/moving"
	"movingdb/internal/obs"
	"movingdb/internal/spatial"
	"movingdb/internal/temporal"
)

// TIReal is the internal intime(real) type produced by initial/final; it
// can be consumed by val/inst but not stored in a result relation.
const TIReal AttrType = 100

// ErrType reports a type error in a query.
var ErrType = errors.New("db: type error")

// ErrNoFunction reports an unknown operation name.
var ErrNoFunction = errors.New("db: unknown operation")

// Undef is the undefined value ⊥ of the model at the query level:
// operations on nowhere-defined moving values yield it, and it
// propagates strictly through expressions; any comparison involving ⊥
// is false (the SQL NULL discipline, which matches the abstract model's
// treatment of undefined).
type Undef struct{}

func (Undef) String() string { return "undef" }

// Catalog names the relations a query may reference.
type Catalog map[string]*Relation

// overload is one signature of a query-language operation together with
// its implementation. Implementations receive the query context so the
// long-running Section 5 kernels can observe cancellation mid-loop;
// cheap operations ignore it.
type overload struct {
	args []AttrType
	ret  AttrType
	fn   func(ctx context.Context, args []any) (any, error)
}

// funcTable registers the operations of the model for the query
// language; it mirrors the signatures of Section 2 (and the typesys
// registry) on the discrete types.
var funcTable = map[string][]overload{}

func register(name string, args []AttrType, ret AttrType, fn func(context.Context, []any) (any, error)) {
	funcTable[name] = append(funcTable[name], overload{args: args, ret: ret, fn: fn})
}

func init() {
	// Projection into space and measures.
	register("trajectory", []AttrType{TMPoint}, TLine, func(_ context.Context, a []any) (any, error) {
		return a[0].(moving.MPoint).Trajectory(), nil
	})
	register("length", []AttrType{TLine}, TReal, func(_ context.Context, a []any) (any, error) {
		return a[0].(spatial.Line).Length(), nil
	})
	register("area", []AttrType{TRegion}, TReal, func(_ context.Context, a []any) (any, error) {
		return a[0].(spatial.Region).Area(), nil
	})
	register("area", []AttrType{TMRegion}, TMReal, func(ctx context.Context, a []any) (any, error) {
		return a[0].(moving.MRegion).AreaCtx(ctx)
	})
	register("perimeter", []AttrType{TRegion}, TReal, func(_ context.Context, a []any) (any, error) {
		return a[0].(spatial.Region).Perimeter(), nil
	})

	// Distance and speed.
	register("distance", []AttrType{TMPoint, TMPoint}, TMReal, func(_ context.Context, a []any) (any, error) {
		return a[0].(moving.MPoint).Distance(a[1].(moving.MPoint)), nil
	})
	register("speed", []AttrType{TMPoint}, TMReal, func(_ context.Context, a []any) (any, error) {
		return a[0].(moving.MPoint).Speed(), nil
	})
	register("travelled", []AttrType{TMPoint}, TReal, func(_ context.Context, a []any) (any, error) {
		return a[0].(moving.MPoint).TravelledDistance(), nil
	})

	// Aggregations over moving reals.
	register("atmin", []AttrType{TMReal}, TMReal, func(_ context.Context, a []any) (any, error) {
		return a[0].(moving.MReal).AtMin(), nil
	})
	register("atmax", []AttrType{TMReal}, TMReal, func(_ context.Context, a []any) (any, error) {
		return a[0].(moving.MReal).AtMax(), nil
	})
	register("min", []AttrType{TMReal}, TReal, func(_ context.Context, a []any) (any, error) {
		v, _, ok := a[0].(moving.MReal).Min()
		if !ok {
			return Undef{}, nil
		}
		return v, nil
	})
	register("max", []AttrType{TMReal}, TReal, func(_ context.Context, a []any) (any, error) {
		v, _, ok := a[0].(moving.MReal).Max()
		if !ok {
			return Undef{}, nil
		}
		return v, nil
	})
	register("integral", []AttrType{TMReal}, TReal, func(_ context.Context, a []any) (any, error) {
		return a[0].(moving.MReal).Integral(), nil
	})

	// Interaction with time.
	register("initial", []AttrType{TMReal}, TIReal, func(_ context.Context, a []any) (any, error) {
		p, ok := a[0].(moving.MReal).Initial()
		if !ok {
			return Undef{}, nil
		}
		return p, nil
	})
	register("final", []AttrType{TMReal}, TIReal, func(_ context.Context, a []any) (any, error) {
		p, ok := a[0].(moving.MReal).Final()
		if !ok {
			return Undef{}, nil
		}
		return p, nil
	})
	register("val", []AttrType{TIReal}, TReal, func(_ context.Context, a []any) (any, error) {
		return a[0].(base.Intime[float64]).Val, nil
	})
	register("inst", []AttrType{TIReal}, TReal, func(_ context.Context, a []any) (any, error) {
		return float64(a[0].(base.Intime[float64]).Inst), nil
	})
	register("deftime", []AttrType{TMPoint}, TPeriods, func(_ context.Context, a []any) (any, error) {
		return a[0].(moving.MPoint).DefTime(), nil
	})
	register("duration", []AttrType{TPeriods}, TReal, func(_ context.Context, a []any) (any, error) {
		return a[0].(temporal.Periods).Duration(), nil
	})
	register("duration", []AttrType{TMBool}, TReal, func(_ context.Context, a []any) (any, error) {
		return a[0].(moving.MBool).TrueDuration(), nil
	})
	register("when", []AttrType{TMPoint, TMBool}, TMPoint, func(_ context.Context, a []any) (any, error) {
		return a[0].(moving.MPoint).When(a[1].(moving.MBool)), nil
	})
	// Predicates.
	register("inside", []AttrType{TMPoint, TMRegion}, TMBool, func(ctx context.Context, a []any) (any, error) {
		return a[0].(moving.MPoint).InsideCtx(ctx, a[1].(moving.MRegion))
	})
	register("inside", []AttrType{TMPoint, TRegion}, TMBool, func(ctx context.Context, a []any) (any, error) {
		return a[0].(moving.MPoint).InsideRegionCtx(ctx, a[1].(spatial.Region))
	})
	register("intersects", []AttrType{TMRegion, TMRegion}, TMBool, func(ctx context.Context, a []any) (any, error) {
		return a[0].(moving.MRegion).IntersectsCtx(ctx, a[1].(moving.MRegion))
	})
	register("intersects", []AttrType{TRegion, TRegion}, TBool, func(_ context.Context, a []any) (any, error) {
		return a[0].(spatial.Region).IntersectsRegion(a[1].(spatial.Region)), nil
	})
	register("union", []AttrType{TRegion, TRegion}, TRegion, func(_ context.Context, a []any) (any, error) {
		return a[0].(spatial.Region).Union(a[1].(spatial.Region))
	})
	register("intersection", []AttrType{TRegion, TRegion}, TRegion, func(_ context.Context, a []any) (any, error) {
		return a[0].(spatial.Region).Intersection(a[1].(spatial.Region))
	})
	register("difference", []AttrType{TRegion, TRegion}, TRegion, func(_ context.Context, a []any) (any, error) {
		return a[0].(spatial.Region).Difference(a[1].(spatial.Region))
	})
	register("sometimes", []AttrType{TMBool}, TBool, func(_ context.Context, a []any) (any, error) {
		return a[0].(moving.MBool).Sometimes(), nil
	})
	register("always", []AttrType{TMBool}, TBool, func(_ context.Context, a []any) (any, error) {
		return a[0].(moving.MBool).Always(), nil
	})
	register("present", []AttrType{TMPoint, TReal}, TBool, func(_ context.Context, a []any) (any, error) {
		return a[0].(moving.MPoint).Present(temporal.Instant(a[1].(float64))), nil
	})
}

// binding resolves column references during typing and evaluation.
type binding struct {
	alias string
	rel   *Relation
}

type queryEnv struct {
	binds []binding
	// tuple values per from-item, set during evaluation.
	tuples []Tuple
	// ctx carries the request deadline; rec, when non-nil, receives
	// per-operator timings; steps counts evaluated rows for the
	// periodic cancellation check.
	ctx   context.Context
	rec   *obs.Metrics
	steps int
}

// cancelCheckRows is how many candidate rows the evaluation loops
// process between context checks.
const cancelCheckRows = 64

// checkCancel returns the (wrapped) context error every
// cancelCheckRows-th row, so a deadline or client disconnect stops the
// cross-product scan in bounded time.
func (q *queryEnv) checkCancel() error {
	q.steps++
	if q.steps%cancelCheckRows != 0 {
		return nil
	}
	if err := q.ctx.Err(); err != nil {
		return fmt.Errorf("db: query canceled: %w", err)
	}
	return nil
}

// resolve finds the from-item and column index of a reference.
func (q *queryEnv) resolve(c colRef) (int, int, error) {
	found := -1
	col := -1
	for bi, b := range q.binds {
		if c.qualifier != "" && b.alias != c.qualifier {
			continue
		}
		if i := b.rel.Schema.Index(c.name); i >= 0 {
			if found >= 0 {
				return 0, 0, fmt.Errorf("%w: ambiguous column %q", ErrType, c)
			}
			found, col = bi, i
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("%w: unknown column %q", ErrType, c)
	}
	return found, col, nil
}

// typeOf statically types an expression.
func (q *queryEnv) typeOf(e expr) (AttrType, error) {
	switch ex := e.(type) {
	case numLit:
		return TReal, nil
	case strLit:
		return TString, nil
	case boolLit:
		return TBool, nil
	case colRef:
		bi, ci, err := q.resolve(ex)
		if err != nil {
			return 0, err
		}
		return q.binds[bi].rel.Schema[ci].Type, nil
	case negop:
		t, err := q.typeOf(ex.e)
		if err != nil {
			return 0, err
		}
		if t != TReal && t != TInt {
			return 0, fmt.Errorf("%w: cannot negate %s", ErrType, t)
		}
		return t, nil
	case notop:
		t, err := q.typeOf(ex.e)
		if err != nil {
			return 0, err
		}
		if t != TBool {
			return 0, fmt.Errorf("%w: NOT needs bool, got %s", ErrType, t)
		}
		return TBool, nil
	case binop:
		lt, err := q.typeOf(ex.l)
		if err != nil {
			return 0, err
		}
		rt, err := q.typeOf(ex.r)
		if err != nil {
			return 0, err
		}
		switch ex.op {
		case "AND", "OR":
			if lt != TBool || rt != TBool {
				return 0, fmt.Errorf("%w: %s needs bools", ErrType, ex.op)
			}
			return TBool, nil
		case "+", "-", "*", "/":
			if lt != TReal || rt != TReal {
				return 0, fmt.Errorf("%w: arithmetic needs reals, got %s and %s", ErrType, lt, rt)
			}
			return TReal, nil
		default: // comparisons
			if lt != rt {
				return 0, fmt.Errorf("%w: comparing %s with %s", ErrType, lt, rt)
			}
			switch lt {
			case TReal, TInt, TString, TBool:
				return TBool, nil
			}
			return 0, fmt.Errorf("%w: cannot compare values of type %s", ErrType, lt)
		}
	case call:
		argTypes := make([]AttrType, len(ex.args))
		for i, a := range ex.args {
			if _, star := a.(starArg); star {
				return 0, fmt.Errorf("%w: * is only valid in count(*) of an aggregate query", ErrType)
			}
			t, err := q.typeOf(a)
			if err != nil {
				return 0, err
			}
			argTypes[i] = t
		}
		ov, err := lookupOverload(ex.fn, argTypes)
		if err != nil {
			return 0, err
		}
		return ov.ret, nil
	case starArg:
		return 0, fmt.Errorf("%w: * is only valid in count(*)", ErrType)
	}
	return 0, fmt.Errorf("%w: unhandled expression %v", ErrType, e)
}

func lookupOverload(name string, args []AttrType) (overload, error) {
	ovs, ok := funcTable[strings.ToLower(name)]
	if !ok {
		return overload{}, fmt.Errorf("%w: %q", ErrNoFunction, name)
	}
	for _, ov := range ovs {
		if len(ov.args) != len(args) {
			continue
		}
		match := true
		for i := range args {
			if ov.args[i] != args[i] {
				match = false
				break
			}
		}
		if match {
			return ov, nil
		}
	}
	return overload{}, fmt.Errorf("%w: no overload of %q for %v", ErrType, name, args)
}

// eval evaluates an expression against the current tuples.
func (q *queryEnv) eval(e expr) (any, error) {
	switch ex := e.(type) {
	case numLit:
		return ex.v, nil
	case strLit:
		return ex.v, nil
	case boolLit:
		return ex.v, nil
	case colRef:
		bi, ci, err := q.resolve(ex)
		if err != nil {
			return nil, err
		}
		return q.tuples[bi][ci], nil
	case negop:
		v, err := q.eval(ex.e)
		if err != nil {
			return nil, err
		}
		switch n := v.(type) {
		case float64:
			return -n, nil
		case int64:
			return -n, nil
		case Undef:
			return n, nil
		}
		return nil, fmt.Errorf("%w: cannot negate %T", ErrType, v)
	case notop:
		v, err := q.eval(ex.e)
		if err != nil {
			return nil, err
		}
		if _, isU := v.(Undef); isU {
			return Undef{}, nil
		}
		return !v.(bool), nil
	case binop:
		l, err := q.eval(ex.l)
		if err != nil {
			return nil, err
		}
		// Short circuit the connectives; ⊥ behaves like false for AND
		// and is absorbed by a true OR branch.
		if ex.op == "AND" {
			if b, isB := l.(bool); isB && !b {
				return false, nil
			}
			r, err := q.eval(ex.r)
			if err != nil {
				return nil, err
			}
			if isUndef(l) || isUndef(r) {
				return Undef{}, nil
			}
			return l.(bool) && r.(bool), nil
		}
		if ex.op == "OR" {
			if b, isB := l.(bool); isB && b {
				return true, nil
			}
			r, err := q.eval(ex.r)
			if err != nil {
				return nil, err
			}
			if isUndef(l) || isUndef(r) {
				return Undef{}, nil
			}
			return l.(bool) || r.(bool), nil
		}
		r, err := q.eval(ex.r)
		if err != nil {
			return nil, err
		}
		if isUndef(l) || isUndef(r) {
			if ex.op == "+" || ex.op == "-" || ex.op == "*" || ex.op == "/" {
				return Undef{}, nil
			}
			return false, nil // comparisons with ⊥ are false
		}
		switch ex.op {
		case "+", "-", "*", "/":
			lf, rf := l.(float64), r.(float64)
			switch ex.op {
			case "+":
				return lf + rf, nil
			case "-":
				return lf - rf, nil
			case "*":
				return lf * rf, nil
			default:
				if rf == 0 {
					return nil, fmt.Errorf("%w: division by zero", ErrType)
				}
				return lf / rf, nil
			}
		}
		return compare(ex.op, l, r)
	case call:
		args := make([]any, len(ex.args))
		argTypes := make([]AttrType, len(ex.args))
		for i, a := range ex.args {
			t, err := q.typeOf(a)
			if err != nil {
				return nil, err
			}
			argTypes[i] = t
			v, err := q.eval(a)
			if err != nil {
				return nil, err
			}
			if _, isU := v.(Undef); isU {
				return Undef{}, nil
			}
			args[i] = v
		}
		ov, err := lookupOverload(ex.fn, argTypes)
		if err != nil {
			return nil, err
		}
		if q.rec != nil {
			start := time.Now()
			v, err := ov.fn(q.ctx, args)
			q.rec.RecordOp(strings.ToLower(ex.fn), time.Since(start))
			return v, err
		}
		return ov.fn(q.ctx, args)
	}
	return nil, fmt.Errorf("%w: unhandled expression %v", ErrType, e)
}

func isUndef(v any) bool {
	_, ok := v.(Undef)
	return ok
}

func compare(op string, l, r any) (any, error) {
	var c int
	switch lv := l.(type) {
	case float64:
		rv := r.(float64)
		switch {
		case lv < rv:
			c = -1
		case lv > rv:
			c = 1
		}
	case int64:
		rv := r.(int64)
		switch {
		case lv < rv:
			c = -1
		case lv > rv:
			c = 1
		}
	case string:
		rv := r.(string)
		c = strings.Compare(lv, rv)
	case bool:
		rv := r.(bool)
		switch {
		case !lv && rv:
			c = -1
		case lv && !rv:
			c = 1
		}
	default:
		return nil, fmt.Errorf("%w: cannot compare %T", ErrType, l)
	}
	switch op {
	case "<":
		return c < 0, nil
	case "<=":
		return c <= 0, nil
	case ">":
		return c > 0, nil
	case ">=":
		return c >= 0, nil
	case "=":
		return c == 0, nil
	case "<>":
		return c != 0, nil
	}
	return nil, fmt.Errorf("%w: bad comparison %q", ErrSyntax, op)
}

// Query parses and executes a SELECT statement against the catalog and
// returns the result relation. The dialect covers the paper's Section 2
// examples: cross joins with aliases, the model's operations as
// functions, and boolean/comparison/arithmetic expressions.
func Query(cat Catalog, sql string) (*Relation, error) {
	return QueryContext(context.Background(), cat, sql)
}

// QueryContext is Query under a context: the evaluation loops and the
// long-running lifted operators (inside, intersects, area) observe
// cancellation, so a deadline or a disconnected client stops the work
// in bounded time rather than running the cross product to completion.
// When the context carries an obs registry (obs.NewContext), operator
// timings are recorded into it.
func QueryContext(ctx context.Context, cat Catalog, sql string) (*Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("db: query canceled: %w", err)
	}
	stmt, err := parseQuery(sql)
	if err != nil {
		return nil, err
	}
	env := &queryEnv{ctx: ctx, rec: obs.FromContext(ctx)}
	for _, f := range stmt.from {
		rel, ok := cat[f.rel]
		if !ok {
			return nil, fmt.Errorf("%w: unknown relation %q", ErrSchema, f.rel)
		}
		env.binds = append(env.binds, binding{alias: f.alias, rel: rel})
	}
	// Expand * and build the output schema by static typing.
	items := stmt.items
	if stmt.star {
		items = nil
		for _, b := range env.binds {
			for _, col := range b.rel.Schema {
				ref := colRef{name: col.Name}
				if len(env.binds) > 1 {
					ref.qualifier = b.alias
				}
				items = append(items, selectItem{e: ref})
			}
		}
	}
	aggMode := len(stmt.groupBy) > 0
	for _, it := range items {
		has, err := env.containsAggregate(it.e)
		if err != nil {
			return nil, err
		}
		aggMode = aggMode || has
	}
	if aggMode {
		if stmt.where != nil {
			t, err := env.typeOf(stmt.where)
			if err != nil {
				return nil, err
			}
			if t != TBool {
				return nil, fmt.Errorf("%w: WHERE must be bool, got %s", ErrType, t)
			}
		}
		return runAggregate(env, stmt, items)
	}
	schema := make(Schema, 0, len(items))
	names := map[string]int{}
	for _, it := range items {
		t, err := env.typeOf(it.e)
		if err != nil {
			return nil, err
		}
		if t == TIReal {
			return nil, fmt.Errorf("%w: intime values cannot be selected; wrap with val() or inst()", ErrType)
		}
		name := it.alias
		if name == "" {
			name = it.e.String()
		}
		if _, dup := names[name]; dup {
			name = fmt.Sprintf("%s#%d", name, len(schema))
		}
		names[name] = len(schema)
		schema = append(schema, Column{Name: name, Type: t})
	}
	if stmt.where != nil {
		t, err := env.typeOf(stmt.where)
		if err != nil {
			return nil, err
		}
		if t != TBool {
			return nil, fmt.Errorf("%w: WHERE must be bool, got %s", ErrType, t)
		}
	}
	// ORDER BY may reference output aliases; substitute them with the
	// underlying expressions.
	aliases := map[string]expr{}
	for _, it := range items {
		if it.alias != "" {
			aliases[it.alias] = it.e
		}
	}
	for k, ob := range stmt.orderBy {
		if ref, isCol := ob.e.(colRef); isCol && ref.qualifier == "" {
			if sub, ok := aliases[ref.name]; ok {
				stmt.orderBy[k].e = sub
			}
		}
	}
	for _, ob := range stmt.orderBy {
		t, err := env.typeOf(ob.e)
		if err != nil {
			return nil, err
		}
		switch t {
		case TReal, TInt, TString, TBool:
		default:
			return nil, fmt.Errorf("%w: ORDER BY needs an orderable type, got %s", ErrType, t)
		}
	}
	out := NewRelation("query", schema)
	var sortKeys [][]any

	// Cross product over the FROM relations.
	env.tuples = make([]Tuple, len(env.binds))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(env.binds) {
			if err := env.checkCancel(); err != nil {
				return err
			}
			if stmt.where != nil {
				keep, err := env.eval(stmt.where)
				if err != nil {
					return err
				}
				if b, isB := keep.(bool); !isB || !b {
					return nil // ⊥ filters the row, like SQL NULL
				}
			}
			row := make(Tuple, len(items))
			for k, it := range items {
				v, err := env.eval(it.e)
				if err != nil {
					return err
				}
				row[k] = v
			}
			if len(stmt.orderBy) > 0 {
				keys := make([]any, len(stmt.orderBy))
				for k, ob := range stmt.orderBy {
					v, err := env.eval(ob.e)
					if err != nil {
						return err
					}
					keys[k] = v
				}
				sortKeys = append(sortKeys, keys)
			}
			return out.Insert(row)
		}
		for _, t := range env.binds[i].rel.Scan() {
			env.tuples[i] = t
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	if len(stmt.orderBy) > 0 {
		sortRelation(out, sortKeys, stmt.orderBy)
	}
	if stmt.limit >= 0 && stmt.limit < len(out.tuples) {
		out.tuples = out.tuples[:stmt.limit]
	}
	return out, nil
}

// sortRelation stably sorts the result rows by the evaluated ORDER BY
// keys; ⊥ keys sort last.
func sortRelation(out *Relation, keys [][]any, order []orderItem) {
	idx := make([]int, len(out.tuples))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for k, ob := range order {
			c := cmpKeys(keys[idx[a]][k], keys[idx[b]][k])
			if c == 0 {
				continue
			}
			if ob.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	tuples := make([]Tuple, len(out.tuples))
	for i, j := range idx {
		tuples[i] = out.tuples[j]
	}
	out.tuples = tuples
}

func cmpKeys(a, b any) int {
	if isUndef(a) || isUndef(b) {
		switch {
		case isUndef(a) && isUndef(b):
			return 0
		case isUndef(a):
			return 1 // ⊥ last
		default:
			return -1
		}
	}
	switch av := a.(type) {
	case float64:
		bv := b.(float64)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
	case int64:
		bv := b.(int64)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
	case string:
		return strings.Compare(av, b.(string))
	case bool:
		bv := b.(bool)
		switch {
		case !av && bv:
			return -1
		case av && !bv:
			return 1
		}
	}
	return 0
}
