// Package db is a miniature relational engine that embeds the moving
// objects data types as attribute types, playing the role of the
// extensible DBMS (Secondo / Informix data blade) the paper targets. It
// provides schemas, tuples, in-memory and storage-backed relations
// (attributes encoded with the Section 4 data structures, large arrays
// spilled to a page store), and the usual iterator operators: scan,
// selection, projection and nested-loop join. The two queries of
// Section 2 are built on top of it (see the flights example and
// cmd/moquery).
package db

import (
	"errors"
	"fmt"
	"strings"

	"movingdb/internal/moving"
	"movingdb/internal/spatial"
	"movingdb/internal/storage"
	"movingdb/internal/temporal"
)

// AttrType enumerates the attribute types the engine hosts.
type AttrType int

// The supported attribute types: the base types plus the spatial and
// moving types of the model.
const (
	TString AttrType = iota
	TInt
	TReal
	TBool
	TPeriods
	TRegion
	TLine
	TMPoint
	TMRegion
	TMReal
	TMBool
	TMPoints
	TMLine
	TPoints
)

// String names the attribute type as in the paper's examples.
func (t AttrType) String() string {
	switch t {
	case TString:
		return "string"
	case TInt:
		return "int"
	case TReal:
		return "real"
	case TBool:
		return "bool"
	case TPeriods:
		return "range(instant)"
	case TRegion:
		return "region"
	case TLine:
		return "line"
	case TMPoint:
		return "mpoint"
	case TMRegion:
		return "mregion"
	case TMReal:
		return "mreal"
	case TMBool:
		return "mbool"
	case TMPoints:
		return "mpoints"
	case TMLine:
		return "mline"
	case TPoints:
		return "points"
	}
	return fmt.Sprintf("AttrType(%d)", int(t))
}

// Column is one attribute of a schema.
type Column struct {
	Name string
	Type AttrType
}

// Schema is an ordered list of columns.
type Schema []Column

// Index returns the position of the named column; −1 if absent.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// String renders the schema as "name(col: type, ...)".
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = fmt.Sprintf("%s: %s", c.Name, c.Type)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Tuple is one row; values are positional and must match the schema
// types (checked on insert).
type Tuple []any

// ErrSchema reports a schema violation.
var ErrSchema = errors.New("db: schema violation")

// Relation is an in-memory relation.
type Relation struct {
	Name   string
	Schema Schema
	tuples []Tuple
}

// NewRelation returns an empty relation with the given schema.
func NewRelation(name string, schema Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Insert appends a tuple after type-checking it against the schema.
func (r *Relation) Insert(t Tuple) error {
	if len(t) != len(r.Schema) {
		return fmt.Errorf("%w: %d values for %d columns", ErrSchema, len(t), len(r.Schema))
	}
	for i, v := range t {
		if !typeOK(r.Schema[i].Type, v) {
			return fmt.Errorf("%w: column %s expects %s, got %T", ErrSchema, r.Schema[i].Name, r.Schema[i].Type, v)
		}
	}
	r.tuples = append(r.tuples, t)
	return nil
}

// MustInsert is like Insert but panics on schema violations.
func (r *Relation) MustInsert(t Tuple) {
	if err := r.Insert(t); err != nil {
		panic(err)
	}
}

func typeOK(at AttrType, v any) bool {
	switch at {
	case TString:
		_, ok := v.(string)
		return ok
	case TInt:
		_, ok := v.(int64)
		return ok
	case TReal:
		_, ok := v.(float64)
		return ok
	case TBool:
		_, ok := v.(bool)
		return ok
	case TPeriods:
		_, ok := v.(temporal.Periods)
		return ok
	case TRegion:
		_, ok := v.(spatial.Region)
		return ok
	case TLine:
		_, ok := v.(spatial.Line)
		return ok
	case TMPoint:
		_, ok := v.(moving.MPoint)
		return ok
	case TMRegion:
		_, ok := v.(moving.MRegion)
		return ok
	case TMReal:
		_, ok := v.(moving.MReal)
		return ok
	case TMBool:
		_, ok := v.(moving.MBool)
		return ok
	case TMPoints:
		_, ok := v.(moving.MPoints)
		return ok
	case TMLine:
		_, ok := v.(moving.MLine)
		return ok
	case TPoints:
		_, ok := v.(spatial.Points)
		return ok
	}
	return false
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Scan returns the tuples (shared; read-only).
func (r *Relation) Scan() []Tuple { return r.tuples }

// Select returns the tuples satisfying pred, as a new relation with the
// same schema.
func (r *Relation) Select(pred func(Tuple) bool) *Relation {
	out := NewRelation(r.Name+"_sel", r.Schema)
	for _, t := range r.tuples {
		if pred(t) {
			out.tuples = append(out.tuples, t)
		}
	}
	return out
}

// Project returns a new relation with only the named columns.
func (r *Relation) Project(cols ...string) (*Relation, error) {
	idx := make([]int, 0, len(cols))
	schema := make(Schema, 0, len(cols))
	for _, c := range cols {
		i := r.Schema.Index(c)
		if i < 0 {
			return nil, fmt.Errorf("%w: no column %q", ErrSchema, c)
		}
		idx = append(idx, i)
		schema = append(schema, r.Schema[i])
	}
	out := NewRelation(r.Name+"_proj", schema)
	for _, t := range r.tuples {
		nt := make(Tuple, len(idx))
		for k, i := range idx {
			nt[k] = t[i]
		}
		out.tuples = append(out.tuples, nt)
	}
	return out, nil
}

// Extend returns a new relation with an extra computed column.
func (r *Relation) Extend(name string, at AttrType, f func(Tuple) any) *Relation {
	schema := append(append(Schema{}, r.Schema...), Column{Name: name, Type: at})
	out := NewRelation(r.Name, schema)
	for _, t := range r.tuples {
		nt := append(append(Tuple{}, t...), f(t))
		out.tuples = append(out.tuples, nt)
	}
	return out
}

// Join returns the nested-loop join of r and s on pred; column names of
// s are prefixed when they clash.
func (r *Relation) Join(s *Relation, pred func(a, b Tuple) bool) *Relation {
	schema := append(Schema{}, r.Schema...)
	for _, c := range s.Schema {
		name := c.Name
		if schema.Index(name) >= 0 {
			name = s.Name + "." + name
		}
		schema = append(schema, Column{Name: name, Type: c.Type})
	}
	out := NewRelation(r.Name+"_join_"+s.Name, schema)
	for _, a := range r.tuples {
		for _, b := range s.tuples {
			if pred(a, b) {
				out.tuples = append(out.tuples, append(append(Tuple{}, a...), b...))
			}
		}
	}
	return out
}

// Get returns the value of the named column in the tuple.
func Get[T any](r *Relation, t Tuple, col string) T {
	i := r.Schema.Index(col)
	if i < 0 {
		panic(fmt.Sprintf("db: no column %q in %v", col, r.Schema))
	}
	v, ok := t[i].(T)
	if !ok {
		panic(fmt.Sprintf("db: column %q holds %T", col, t[i]))
	}
	return v
}

// --- storage-backed relations ---

// StoredRelation keeps every attribute in the Section 4 representation:
// root record plus arrays, small arrays inline in the tuple, large ones
// in the page store. Scanning decodes on the fly — the round trip every
// attribute of a real data blade makes.
type StoredRelation struct {
	Name   string
	Schema Schema
	Store  *storage.PageStore
	rows   [][]storage.StoredValue
}

// StoreRelation encodes an in-memory relation into a stored one.
func StoreRelation(r *Relation, ps *storage.PageStore) (*StoredRelation, error) {
	out := &StoredRelation{Name: r.Name, Schema: r.Schema, Store: ps}
	for _, t := range r.tuples {
		row := make([]storage.StoredValue, len(t))
		for i, v := range t {
			enc, err := encodeAttr(r.Schema[i].Type, v)
			if err != nil {
				return nil, err
			}
			row[i] = storage.Store(ps, enc)
		}
		out.rows = append(out.rows, row)
	}
	return out, nil
}

// Len returns the number of stored tuples.
func (r *StoredRelation) Len() int { return len(r.rows) }

// InlineBytes returns the total tuple-resident size.
func (r *StoredRelation) InlineBytes() int {
	n := 0
	for _, row := range r.rows {
		for _, v := range row {
			n += v.InlineSize()
		}
	}
	return n
}

// ExternalPages returns the total number of LOB pages.
func (r *StoredRelation) ExternalPages() int {
	n := 0
	for _, row := range r.rows {
		for _, v := range row {
			n += v.ExternalPages()
		}
	}
	return n
}

// Load decodes the stored relation back into memory.
func (r *StoredRelation) Load() (*Relation, error) {
	out := NewRelation(r.Name, r.Schema)
	for _, row := range r.rows {
		t := make(Tuple, len(row))
		for i, sv := range row {
			enc, err := storage.Load(r.Store, sv)
			if err != nil {
				return nil, err
			}
			v, err := decodeAttr(r.Schema[i].Type, enc)
			if err != nil {
				return nil, err
			}
			t[i] = v
		}
		out.tuples = append(out.tuples, t)
	}
	return out, nil
}

func encodeAttr(at AttrType, v any) (storage.Encoded, error) {
	switch at {
	case TString:
		return storage.EncodeString(v.(string)), nil
	case TInt:
		return storage.EncodeInt(v.(int64)), nil
	case TReal:
		return storage.EncodeReal(v.(float64)), nil
	case TBool:
		return storage.EncodeBool(v.(bool)), nil
	case TPeriods:
		return storage.EncodePeriods(v.(temporal.Periods)), nil
	case TRegion:
		return storage.EncodeRegion(v.(spatial.Region)), nil
	case TLine:
		return storage.EncodeLine(v.(spatial.Line)), nil
	case TMPoint:
		return storage.EncodeMPoint(v.(moving.MPoint)), nil
	case TMRegion:
		return storage.EncodeMRegion(v.(moving.MRegion)), nil
	case TMReal:
		return storage.EncodeMReal(v.(moving.MReal)), nil
	case TMBool:
		return storage.EncodeMBool(v.(moving.MBool)), nil
	case TMPoints:
		return storage.EncodeMPoints(v.(moving.MPoints)), nil
	case TMLine:
		return storage.EncodeMLine(v.(moving.MLine)), nil
	case TPoints:
		return storage.EncodePoints(v.(spatial.Points)), nil
	}
	return storage.Encoded{}, fmt.Errorf("%w: unsupported attribute type %v", ErrSchema, at)
}

func decodeAttr(at AttrType, e storage.Encoded) (any, error) {
	switch at {
	case TString:
		return storage.DecodeString(e)
	case TInt:
		return storage.DecodeInt(e)
	case TReal:
		return storage.DecodeReal(e)
	case TBool:
		return storage.DecodeBool(e)
	case TPeriods:
		return storage.DecodePeriods(e)
	case TRegion:
		return storage.DecodeRegion(e)
	case TLine:
		return storage.DecodeLine(e)
	case TMPoint:
		return storage.DecodeMPoint(e)
	case TMRegion:
		return storage.DecodeMRegion(e)
	case TMReal:
		return storage.DecodeMReal(e)
	case TMBool:
		return storage.DecodeMBool(e)
	case TMPoints:
		return storage.DecodeMPoints(e)
	case TMLine:
		return storage.DecodeMLine(e)
	case TPoints:
		return storage.DecodePoints(e)
	}
	return nil, fmt.Errorf("%w: unsupported attribute type %v", ErrSchema, at)
}
