package db

import (
	"fmt"
	"sort"
	"strings"
)

// Aggregation: COUNT / SUM / AVG / MIN / MAX with optional GROUP BY over
// column references. A query runs in aggregate mode when it has a GROUP
// BY clause or an aggregate call in its SELECT list; in that mode every
// SELECT item must be a grouping column or an aggregate. The names
// min/max double as the lifted operations on moving reals — a call is an
// aggregate exactly when its argument is a scalar row expression.

// starArg is the parsed form of the `*` argument of count(*).
type starArg struct{}

func (starArg) String() string { return "*" }

// isAggregateCall reports whether the call is an aggregate in row
// context and returns the inner expression (nil for count(*)).
func (q *queryEnv) isAggregateCall(c call) (bool, expr, error) {
	switch strings.ToLower(c.fn) {
	case "count":
		if len(c.args) == 1 {
			if _, star := c.args[0].(starArg); star {
				return true, nil, nil
			}
			return true, c.args[0], nil
		}
	case "sum", "avg", "min", "max":
		if len(c.args) != 1 {
			return false, nil, nil
		}
		t, err := q.typeOf(c.args[0])
		if err != nil {
			return false, nil, err
		}
		switch t {
		case TReal, TInt:
			return true, c.args[0], nil
		case TString, TBool:
			if strings.EqualFold(c.fn, "min") || strings.EqualFold(c.fn, "max") {
				return true, c.args[0], nil
			}
		}
	}
	return false, nil, nil
}

// containsAggregate reports whether the expression tree holds an
// aggregate call at any level.
func (q *queryEnv) containsAggregate(e expr) (bool, error) {
	switch ex := e.(type) {
	case call:
		if agg, _, err := q.isAggregateCall(ex); err != nil {
			return false, err
		} else if agg {
			return true, nil
		}
		for _, a := range ex.args {
			if got, err := q.containsAggregate(a); err != nil || got {
				return got, err
			}
		}
	case binop:
		if got, err := q.containsAggregate(ex.l); err != nil || got {
			return got, err
		}
		return q.containsAggregate(ex.r)
	case notop:
		return q.containsAggregate(ex.e)
	case negop:
		return q.containsAggregate(ex.e)
	}
	return false, nil
}

// accumulator folds one aggregate over the rows of a group.
type accumulator struct {
	fn    string // count sum avg min max
	inner expr   // nil for count(*)
	typ   AttrType

	n     int64
	sum   float64
	minV  any
	maxV  any
	valid bool
}

func (a *accumulator) add(q *queryEnv) error {
	if a.inner == nil { // count(*)
		a.n++
		return nil
	}
	v, err := q.eval(a.inner)
	if err != nil {
		return err
	}
	if isUndef(v) {
		return nil // ⊥ contributes to no aggregate (SQL NULL)
	}
	a.n++
	switch a.fn {
	case "sum", "avg":
		switch x := v.(type) {
		case float64:
			a.sum += x
		case int64:
			a.sum += float64(x)
		}
	case "min":
		if !a.valid || cmpKeys(v, a.minV) < 0 {
			a.minV = v
		}
	case "max":
		if !a.valid || cmpKeys(v, a.maxV) > 0 {
			a.maxV = v
		}
	}
	a.valid = true
	return nil
}

func (a *accumulator) result() any {
	switch a.fn {
	case "count":
		return a.n
	case "sum":
		return a.sum
	case "avg":
		if a.n == 0 {
			return Undef{}
		}
		return a.sum / float64(a.n)
	case "min":
		if !a.valid {
			return Undef{}
		}
		return a.minV
	case "max":
		if !a.valid {
			return Undef{}
		}
		return a.maxV
	}
	return Undef{}
}

func (a *accumulator) resultType() AttrType {
	switch a.fn {
	case "count":
		return TInt
	case "sum", "avg":
		return TReal
	}
	return a.typ
}

// runAggregate executes an aggregate-mode query.
func runAggregate(env *queryEnv, stmt *selectStmt, items []selectItem) (*Relation, error) {
	// Classify the select items: group column or aggregate.
	type outCol struct {
		isGroup  bool
		groupRef colRef
		fn       string
		inner    expr
		innerTyp AttrType
		name     string
	}
	groupIdx := func(ref colRef) int {
		for i, g := range stmt.groupBy {
			if g.name == ref.name && (g.qualifier == ref.qualifier || g.qualifier == "" || ref.qualifier == "") {
				return i
			}
		}
		return -1
	}
	var cols []outCol
	schema := make(Schema, 0, len(items))
	for _, it := range items {
		name := it.alias
		if name == "" {
			name = it.e.String()
		}
		if ref, isCol := it.e.(colRef); isCol {
			if groupIdx(ref) < 0 {
				return nil, fmt.Errorf("%w: column %q must appear in GROUP BY or inside an aggregate", ErrType, ref)
			}
			t, err := env.typeOf(ref)
			if err != nil {
				return nil, err
			}
			cols = append(cols, outCol{isGroup: true, groupRef: ref, name: name})
			schema = append(schema, Column{Name: name, Type: t})
			continue
		}
		c, isCall := it.e.(call)
		if !isCall {
			return nil, fmt.Errorf("%w: aggregate queries allow group columns and aggregates, got %v", ErrType, it.e)
		}
		agg, inner, err := env.isAggregateCall(c)
		if err != nil {
			return nil, err
		}
		if !agg {
			return nil, fmt.Errorf("%w: %q is not an aggregate", ErrType, c.fn)
		}
		oc := outCol{fn: strings.ToLower(c.fn), inner: inner, name: name}
		if inner != nil {
			t, err := env.typeOf(inner)
			if err != nil {
				return nil, err
			}
			oc.innerTyp = t
		}
		acc := accumulator{fn: oc.fn, inner: oc.inner, typ: oc.innerTyp}
		cols = append(cols, oc)
		schema = append(schema, Column{Name: name, Type: acc.resultType()})
	}
	for _, g := range stmt.groupBy {
		t, err := env.typeOf(g)
		if err != nil {
			return nil, err
		}
		switch t {
		case TReal, TInt, TString, TBool:
		default:
			return nil, fmt.Errorf("%w: GROUP BY needs a scalar column, got %s", ErrType, t)
		}
	}

	type group struct {
		keyVals []any
		accs    []*accumulator
	}
	groups := map[string]*group{}
	var order []string

	var rec func(i int) error
	rec = func(i int) error {
		if i == len(env.binds) {
			if err := env.checkCancel(); err != nil {
				return err
			}
			if stmt.where != nil {
				keep, err := env.eval(stmt.where)
				if err != nil {
					return err
				}
				if b, isB := keep.(bool); !isB || !b {
					return nil
				}
			}
			keyVals := make([]any, len(stmt.groupBy))
			var key strings.Builder
			for k, g := range stmt.groupBy {
				v, err := env.eval(g)
				if err != nil {
					return err
				}
				keyVals[k] = v
				fmt.Fprintf(&key, "%v\x00", v)
			}
			gr, ok := groups[key.String()]
			if !ok {
				gr = &group{keyVals: keyVals}
				for _, oc := range cols {
					if oc.isGroup {
						gr.accs = append(gr.accs, nil)
						continue
					}
					gr.accs = append(gr.accs, &accumulator{fn: oc.fn, inner: oc.inner, typ: oc.innerTyp})
				}
				groups[key.String()] = gr
				order = append(order, key.String())
			}
			for _, acc := range gr.accs {
				if acc == nil {
					continue
				}
				if err := acc.add(env); err != nil {
					return err
				}
			}
			return nil
		}
		for _, t := range env.binds[i].rel.Scan() {
			env.tuples[i] = t
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	env.tuples = make([]Tuple, len(env.binds))
	if err := rec(0); err != nil {
		return nil, err
	}
	// A global aggregate over zero rows still yields one row.
	if len(stmt.groupBy) == 0 && len(groups) == 0 {
		gr := &group{}
		for _, oc := range cols {
			gr.accs = append(gr.accs, &accumulator{fn: oc.fn, inner: oc.inner, typ: oc.innerTyp})
		}
		groups[""] = gr
		order = append(order, "")
	}

	out := NewRelation("query", schema)
	for _, k := range order {
		gr := groups[k]
		row := make(Tuple, len(cols))
		for i, oc := range cols {
			if oc.isGroup {
				row[i] = gr.keyVals[groupIdx(oc.groupRef)]
				continue
			}
			v := gr.accs[i].result()
			if isUndef(v) {
				return nil, fmt.Errorf("%w: aggregate %s over no defined values", ErrType, oc.fn)
			}
			row[i] = v
		}
		if err := out.Insert(row); err != nil {
			return nil, err
		}
	}
	// ORDER BY over output column names, then LIMIT.
	if len(stmt.orderBy) > 0 {
		idxs := make([]int, len(stmt.orderBy))
		for k, ob := range stmt.orderBy {
			ref, isCol := ob.e.(colRef)
			if !isCol || ref.qualifier != "" {
				return nil, fmt.Errorf("%w: aggregate ORDER BY must name an output column", ErrType)
			}
			i := out.Schema.Index(ref.name)
			if i < 0 {
				return nil, fmt.Errorf("%w: unknown output column %q in ORDER BY", ErrType, ref.name)
			}
			idxs[k] = i
		}
		sort.SliceStable(out.tuples, func(a, b int) bool {
			for k, i := range idxs {
				c := cmpKeys(out.tuples[a][i], out.tuples[b][i])
				if c == 0 {
					continue
				}
				if stmt.orderBy[k].desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if stmt.limit >= 0 && stmt.limit < len(out.tuples) {
		out.tuples = out.tuples[:stmt.limit]
	}
	return out, nil
}
