package base

import (
	"errors"
	"fmt"
	"slices"
	"strings"

	"movingdb/internal/temporal"
)

// Ordered captures the base domains the range constructor accepts:
// every type in BASE ∪ TIME carries a total order.
type Ordered interface {
	~int64 | ~float64 | ~string
}

// Note on discrete domains: the paper's r-adjacent predicate has an
// extra clause for discrete domains such as int, where [1,2] and [3,4]
// are adjacent because no value lies between 2 and 3. Discreteness is
// expressed here by a successor function; dense domains have none.

// Interval is an interval over an ordered base domain with closure
// flags, the carrier set Interval(S) of Section 3.2.3.
type Interval[T Ordered] struct {
	Start, End T
	LC, RC     bool
}

// ErrInvalidRange reports a violation of the range carrier set
// constraints.
var ErrInvalidRange = errors.New("base: invalid range")

// NewInterval validates and returns an interval over an ordered domain.
func NewInterval[T Ordered](s, e T, lc, rc bool) (Interval[T], error) {
	if e < s {
		return Interval[T]{}, fmt.Errorf("%w: start %v after end %v", ErrInvalidRange, s, e)
	}
	if s == e && !(lc && rc) {
		return Interval[T]{}, fmt.Errorf("%w: degenerate interval at %v must be closed", ErrInvalidRange, s)
	}
	return Interval[T]{Start: s, End: e, LC: lc, RC: rc}, nil
}

// MustInterval is like NewInterval but panics on invalid input.
func MustInterval[T Ordered](s, e T, lc, rc bool) Interval[T] {
	iv, err := NewInterval(s, e, lc, rc)
	if err != nil {
		panic(err)
	}
	return iv
}

// ClosedInterval returns [s, e].
func ClosedInterval[T Ordered](s, e T) Interval[T] { return MustInterval(s, e, true, true) }

// Contains reports whether v lies in the interval.
func (i Interval[T]) Contains(v T) bool {
	if v < i.Start || v > i.End {
		return false
	}
	if v == i.Start && !i.LC {
		return false
	}
	if v == i.End && !i.RC {
		return false
	}
	return true
}

// RDisjoint implements the paper's r-disjoint predicate.
func (i Interval[T]) RDisjoint(u Interval[T]) bool {
	return i.End < u.Start || (i.End == u.Start && !(i.RC && u.LC))
}

// Disjoint reports whether i and u share no value.
func (i Interval[T]) Disjoint(u Interval[T]) bool { return i.RDisjoint(u) || u.RDisjoint(i) }

// rAdjacent implements r-adjacent including the discrete-domain clause:
// succ, if non-nil, returns the successor of a domain value (e.g. x+1
// for int), enabling [1,2] and [3,4] to be recognised as adjacent.
func (i Interval[T]) rAdjacent(u Interval[T], succ func(T) (T, bool)) bool {
	if !i.Disjoint(u) {
		return false
	}
	if i.End == u.Start && (i.RC || u.LC) {
		return true
	}
	if succ != nil && i.RC && u.LC {
		if s, ok := succ(i.End); ok && s == u.Start {
			return true
		}
	}
	return false
}

// Adjacent reports whether i and u are adjacent; succ may be nil for
// dense domains.
func (i Interval[T]) Adjacent(u Interval[T], succ func(T) (T, bool)) bool {
	return i.rAdjacent(u, succ) || u.rAdjacent(i, succ)
}

// String renders the interval in bracket notation.
func (i Interval[T]) String() string {
	lb, rb := "(", ")"
	if i.LC {
		lb = "["
	}
	if i.RC {
		rb = "]"
	}
	return fmt.Sprintf("%s%v, %v%s", lb, i.Start, i.End, rb)
}

// Range is the range(α) type: a canonical finite set of disjoint,
// non-adjacent intervals over an ordered base domain. For discrete
// domains, construct it with NewDiscreteRange so that the
// discreteness-aware adjacency merging applies.
type Range[T Ordered] struct {
	ivs  []Interval[T]
	succ func(T) (T, bool)
}

// IntSucc is the successor function of the int domain.
func IntSucc(x int64) (int64, bool) {
	if x == int64(^uint64(0)>>1) {
		return 0, false
	}
	return x + 1, true
}

// NewRange builds a canonical range over a dense domain (real, string,
// instant), merging overlapping or adjacent intervals.
func NewRange[T Ordered](ivs ...Interval[T]) (Range[T], error) {
	return newRange(nil, ivs)
}

// NewDiscreteRange builds a canonical range over a discrete domain using
// succ for adjacency (e.g. IntSucc for range(int)).
func NewDiscreteRange[T Ordered](succ func(T) (T, bool), ivs ...Interval[T]) (Range[T], error) {
	return newRange(succ, ivs)
}

func newRange[T Ordered](succ func(T) (T, bool), ivs []Interval[T]) (Range[T], error) {
	for _, iv := range ivs {
		if _, err := NewInterval(iv.Start, iv.End, iv.LC, iv.RC); err != nil {
			return Range[T]{}, err
		}
	}
	work := make([]Interval[T], len(ivs))
	copy(work, ivs)
	slices.SortFunc(work, func(a, b Interval[T]) int {
		switch {
		case a.Start < b.Start:
			return -1
		case a.Start > b.Start:
			return 1
		case a.LC && !b.LC:
			return -1
		case !a.LC && b.LC:
			return 1
		case a.End < b.End:
			return -1
		case a.End > b.End:
			return 1
		}
		return 0
	})
	var out []Interval[T]
	for _, iv := range work {
		if n := len(out); n > 0 {
			prev := out[n-1]
			if !prev.Disjoint(iv) || prev.Adjacent(iv, succ) {
				merged := prev
				if iv.Start < merged.Start {
					merged.Start, merged.LC = iv.Start, iv.LC
				} else if iv.Start == merged.Start {
					merged.LC = merged.LC || iv.LC
				}
				if iv.End > merged.End {
					merged.End, merged.RC = iv.End, iv.RC
				} else if iv.End == merged.End {
					merged.RC = merged.RC || iv.RC
				}
				// Discrete adjacency across a gap ([1,2]+[3,4]) keeps
				// both endpoints closed and spans the union.
				out[n-1] = merged
				continue
			}
		}
		out = append(out, iv)
	}
	return Range[T]{ivs: out, succ: succ}, nil
}

// Intervals returns the canonical interval sequence (shared; read-only).
func (r Range[T]) Intervals() []Interval[T] { return r.ivs }

// Len returns the number of intervals.
func (r Range[T]) Len() int { return len(r.ivs) }

// IsEmpty reports whether the range contains no value.
func (r Range[T]) IsEmpty() bool { return len(r.ivs) == 0 }

// Contains reports whether v lies in the range (binary search).
func (r Range[T]) Contains(v T) bool {
	lo, hi := 0, len(r.ivs)
	for lo < hi {
		mid := (lo + hi) / 2
		iv := r.ivs[mid]
		switch {
		case iv.Contains(v):
			return true
		case v < iv.Start || (v == iv.Start && !iv.LC):
			hi = mid
		default:
			lo = mid + 1
		}
	}
	return false
}

// Min returns the smallest element or infimum; ok is false when empty.
func (r Range[T]) Min() (T, bool) {
	var zero T
	if len(r.ivs) == 0 {
		return zero, false
	}
	return r.ivs[0].Start, true
}

// Max returns the largest element or supremum; ok is false when empty.
func (r Range[T]) Max() (T, bool) {
	var zero T
	if len(r.ivs) == 0 {
		return zero, false
	}
	return r.ivs[len(r.ivs)-1].End, true
}

// Union returns the set union of r and s.
func (r Range[T]) Union(s Range[T]) Range[T] {
	all := make([]Interval[T], 0, len(r.ivs)+len(s.ivs))
	all = append(all, r.ivs...)
	all = append(all, s.ivs...)
	out, err := newRange(pickSucc(r, s), all)
	if err != nil {
		panic(fmt.Sprintf("base: union of canonical ranges failed: %v", err))
	}
	return out
}

// Intersect returns the set intersection of r and s.
func (r Range[T]) Intersect(s Range[T]) Range[T] {
	var out []Interval[T]
	i, j := 0, 0
	for i < len(r.ivs) && j < len(s.ivs) {
		a, b := r.ivs[i], s.ivs[j]
		lo := max(a.Start, b.Start)
		hi := min(a.End, b.End)
		lc := a.Contains(lo) && b.Contains(lo)
		rc := a.Contains(hi) && b.Contains(hi)
		if lo < hi || (lo == hi && lc && rc) {
			out = append(out, Interval[T]{Start: lo, End: hi, LC: lc, RC: rc})
		}
		if a.End < b.End || (a.End == b.End && !a.RC) {
			i++
		} else {
			j++
		}
	}
	return Range[T]{ivs: out, succ: pickSucc(r, s)}
}

func pickSucc[T Ordered](r, s Range[T]) func(T) (T, bool) {
	if r.succ != nil {
		return r.succ
	}
	return s.succ
}

// Equal reports value equality; canonical representations make this a
// slice comparison.
func (r Range[T]) Equal(s Range[T]) bool { return slices.Equal(r.ivs, s.ivs) }

// Validate checks canonicity (for values read back from storage).
func (r Range[T]) Validate() error {
	for k, iv := range r.ivs {
		if _, err := NewInterval(iv.Start, iv.End, iv.LC, iv.RC); err != nil {
			return err
		}
		if k > 0 {
			prev := r.ivs[k-1]
			if !prev.RDisjoint(iv) {
				return fmt.Errorf("%w: intervals %v and %v overlap or are unordered", ErrInvalidRange, prev, iv)
			}
			if prev.Adjacent(iv, r.succ) {
				return fmt.Errorf("%w: intervals %v and %v adjacent", ErrInvalidRange, prev, iv)
			}
		}
	}
	return nil
}

// String renders the range as "{[a, b], (c, d)}".
func (r Range[T]) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for k, iv := range r.ivs {
		if k > 0 {
			b.WriteString(", ")
		}
		b.WriteString(iv.String())
	}
	b.WriteByte('}')
	return b.String()
}

// Intime is the intime(α) type constructor: a pair of a time instant and
// a value (Section 3.2.3).
type Intime[T any] struct {
	Inst temporal.Instant
	Val  T
}

// String formats the pair as "(t, v)".
func (p Intime[T]) String() string { return fmt.Sprintf("(%v, %v)", p.Inst, p.Val) }
