// Package base implements the discrete base types of the moving objects
// data model (Section 3.2.1): int, real, string and bool, each extended
// with the undefined value ⊥, plus the generic range(α) type constructor
// over totally ordered base domains (Section 3.2.3) and the intime(α)
// pairs.
package base

import (
	"fmt"

	"movingdb/internal/temporal"
)

// Value is a base-type value extended with the undefined value ⊥,
// mirroring the paper's carrier sets D_int = int ∪ {⊥} and so on. The
// zero Value is undefined.
type Value[T comparable] struct {
	v       T
	defined bool
}

// Def returns a defined value.
func Def[T comparable](v T) Value[T] { return Value[T]{v: v, defined: true} }

// Undef returns the undefined value ⊥.
func Undef[T comparable]() Value[T] { return Value[T]{} }

// Defined reports whether the value is not ⊥.
func (x Value[T]) Defined() bool { return x.defined }

// Get returns the underlying value; ok is false for ⊥.
func (x Value[T]) Get() (T, bool) { return x.v, x.defined }

// MustGet returns the underlying value and panics on ⊥.
func (x Value[T]) MustGet() T {
	if !x.defined {
		panic("base: undefined value")
	}
	return x.v
}

// Equal reports whether two values are equal; ⊥ equals only ⊥.
func (x Value[T]) Equal(y Value[T]) bool { return x == y }

// String formats the value, rendering ⊥ as "undef".
func (x Value[T]) String() string {
	if !x.defined {
		return "undef"
	}
	return fmt.Sprintf("%v", x.v)
}

// The concrete base types of the model.
type (
	// IntVal is the discrete int type (D_int = int ∪ {⊥}).
	IntVal = Value[int64]
	// RealVal is the discrete real type.
	RealVal = Value[float64]
	// StringVal is the discrete string type.
	StringVal = Value[string]
	// BoolVal is the discrete bool type.
	BoolVal = Value[bool]
	// InstantVal is the discrete instant type (time domain ∪ {⊥}).
	InstantVal = Value[temporal.Instant]
)
