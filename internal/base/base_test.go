package base

import (
	"testing"
	"testing/quick"
)

func TestValueUndef(t *testing.T) {
	u := Undef[int64]()
	if u.Defined() {
		t.Error("Undef is defined")
	}
	if _, ok := u.Get(); ok {
		t.Error("Get on undef succeeded")
	}
	if u.String() != "undef" {
		t.Errorf("String = %q", u.String())
	}
	d := Def[int64](42)
	if !d.Defined() || d.MustGet() != 42 {
		t.Error("Def roundtrip failed")
	}
	if d.Equal(u) || !d.Equal(Def[int64](42)) {
		t.Error("Equal wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGet on undef did not panic")
		}
	}()
	u.MustGet()
}

func TestValueKinds(t *testing.T) {
	if Def("abc").String() != "abc" {
		t.Error("StringVal format")
	}
	if Def(true).String() != "true" {
		t.Error("BoolVal format")
	}
	if Def(3.5).String() != "3.5" {
		t.Error("RealVal format")
	}
}

func TestIntervalValidation(t *testing.T) {
	if _, err := NewInterval[int64](5, 2, true, true); err == nil {
		t.Error("reversed interval accepted")
	}
	if _, err := NewInterval[int64](2, 2, false, true); err == nil {
		t.Error("half-open degenerate accepted")
	}
	iv := ClosedInterval[int64](1, 5)
	if !iv.Contains(1) || !iv.Contains(5) || iv.Contains(0) || iv.Contains(6) {
		t.Error("Contains wrong")
	}
	half := MustInterval[int64](1, 5, false, true)
	if half.Contains(1) || !half.Contains(5) {
		t.Error("closure flags ignored")
	}
}

func TestDiscreteAdjacency(t *testing.T) {
	a := ClosedInterval[int64](1, 2)
	b := ClosedInterval[int64](3, 4)
	if !a.Adjacent(b, IntSucc) {
		t.Error("[1,2] and [3,4] adjacent over int")
	}
	if a.Adjacent(b, nil) {
		t.Error("[1,2] and [3,4] not adjacent over a dense domain")
	}
	c := ClosedInterval[int64](4, 5)
	if b.Disjoint(c) {
		t.Error("[3,4] and [4,5] share 4")
	}
}

func TestRangeCanonicalDense(t *testing.T) {
	r, err := NewRange(
		MustInterval(0.0, 2.0, true, false),
		MustInterval(2.0, 4.0, true, true),
		MustInterval(6.0, 7.0, true, true),
	)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("canonical = %v", r)
	}
	if r.Intervals()[0] != ClosedInterval(0.0, 4.0) {
		t.Errorf("merged = %v", r.Intervals()[0])
	}
	if err := r.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestRangeCanonicalDiscrete(t *testing.T) {
	r, err := NewDiscreteRange(IntSucc,
		ClosedInterval[int64](1, 2),
		ClosedInterval[int64](3, 4), // adjacent over int: merge
		ClosedInterval[int64](10, 12),
	)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("canonical = %v", r)
	}
	if r.Intervals()[0] != ClosedInterval[int64](1, 4) {
		t.Errorf("merged = %v", r.Intervals()[0])
	}
	if err := r.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestRangeContains(t *testing.T) {
	r, _ := NewRange(
		MustInterval(0.0, 2.0, true, false),
		ClosedInterval(5.0, 7.0),
	)
	cases := []struct {
		v    float64
		want bool
	}{{-1, false}, {0, true}, {1.5, true}, {2, false}, {3, false}, {5, true}, {7, true}, {8, false}}
	for _, c := range cases {
		if got := r.Contains(c.v); got != c.want {
			t.Errorf("Contains(%v) = %v", c.v, got)
		}
	}
	if mn, ok := r.Min(); !ok || mn != 0 {
		t.Error("Min wrong")
	}
	if mx, ok := r.Max(); !ok || mx != 7 {
		t.Error("Max wrong")
	}
}

func TestRangeSetOps(t *testing.T) {
	r, _ := NewRange(ClosedInterval(0.0, 4.0))
	s, _ := NewRange(ClosedInterval(2.0, 6.0), ClosedInterval(8.0, 9.0))
	u := r.Union(s)
	if u.Len() != 2 || u.Intervals()[0] != ClosedInterval(0.0, 6.0) {
		t.Errorf("union = %v", u)
	}
	i := r.Intersect(s)
	if i.Len() != 1 || i.Intervals()[0] != ClosedInterval(2.0, 4.0) {
		t.Errorf("intersect = %v", i)
	}
	// Open/closed boundary handling in intersection.
	a, _ := NewRange(MustInterval(0.0, 2.0, true, false))
	b, _ := NewRange(ClosedInterval(2.0, 3.0))
	if !a.Intersect(b).IsEmpty() {
		t.Errorf("[0,2) ∩ [2,3] = %v", a.Intersect(b))
	}
}

func TestRangeStringRange(t *testing.T) {
	r, err := NewRange(ClosedInterval("apple", "cherry"), ClosedInterval("kiwi", "mango"))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains("banana") || r.Contains("grape") || !r.Contains("kiwi") {
		t.Error("string range membership wrong")
	}
}

func TestRangeEqualCanonical(t *testing.T) {
	r1, _ := NewRange(MustInterval(0.0, 1.0, true, false), ClosedInterval(1.0, 2.0))
	r2, _ := NewRange(ClosedInterval(0.0, 2.0))
	if !r1.Equal(r2) {
		t.Errorf("canonical forms differ: %v vs %v", r1, r2)
	}
}

func TestRangeSetOpsProperty(t *testing.T) {
	mk := func(raw []int8) Range[float64] {
		var ivs []Interval[float64]
		for k := 0; k+1 < len(raw); k += 2 {
			s, e := float64(raw[k]), float64(raw[k+1])
			if s > e {
				s, e = e, s
			}
			ivs = append(ivs, ClosedInterval(s, e))
		}
		r, _ := NewRange(ivs...)
		return r
	}
	f := func(raw1, raw2 []int8, probe int8) bool {
		r, s := mk(raw1), mk(raw2)
		v := float64(probe)
		inR, inS := r.Contains(v), s.Contains(v)
		if r.Union(s).Contains(v) != (inR || inS) {
			return false
		}
		if r.Intersect(s).Contains(v) != (inR && inS) {
			return false
		}
		return r.Union(s).Validate() == nil && r.Intersect(s).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestIntSuccOverflow(t *testing.T) {
	if _, ok := IntSucc(int64(^uint64(0) >> 1)); ok {
		t.Error("IntSucc at MaxInt64 must fail")
	}
	if s, ok := IntSucc(41); !ok || s != 42 {
		t.Error("IntSucc(41) wrong")
	}
}

func TestIntime(t *testing.T) {
	p := Intime[float64]{Inst: 3, Val: 1.5}
	if p.String() != "(3, 1.5)" {
		t.Errorf("String = %q", p.String())
	}
}
