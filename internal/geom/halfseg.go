package geom

import (
	"fmt"
	"slices"
)

// HalfSegment stores a segment together with a flag selecting one of its
// two endpoints as the dominating point. Each segment of a line or
// region value is stored twice — once per endpoint — so that plane-sweep
// algorithms meet every segment at both its left and its right end
// (Section 4.1 of the paper, following the ROSE algebra implementation).
type HalfSegment struct {
	Seg Segment
	// LeftDom selects the dominating point: true means Seg.Left
	// dominates (this is the "left halfsegment"), false means Seg.Right.
	LeftDom bool
}

// Dom returns the dominating point of the halfsegment.
func (h HalfSegment) Dom() Point {
	if h.LeftDom {
		return h.Seg.Left
	}
	return h.Seg.Right
}

// Sec returns the secondary (non-dominating) endpoint.
func (h HalfSegment) Sec() Point {
	if h.LeftDom {
		return h.Seg.Right
	}
	return h.Seg.Left
}

// String formats the halfsegment with its dominating point first.
func (h HalfSegment) String() string { return fmt.Sprintf("[%v>%v]", h.Dom(), h.Sec()) }

// Cmp implements the ROSE halfsegment order: halfsegments are ordered by
// dominating point (lexicographically); among halfsegments with the same
// dominating point, right halfsegments precede left ones; ties among
// halfsegments of the same flag are broken by the counter-clockwise
// angle of the secondary endpoint around the dominating point. This
// order makes an array of halfsegments directly traversable by a
// left-to-right plane sweep.
func (h HalfSegment) Cmp(g HalfSegment) int {
	if c := h.Dom().Cmp(g.Dom()); c != 0 {
		return c
	}
	if h.LeftDom != g.LeftDom {
		// Right halfsegments (segment lies to the left of the sweep
		// line) come first so the sweep removes before it inserts.
		if !h.LeftDom {
			return -1
		}
		return 1
	}
	// Same dominating point and flag: order by rotation of the
	// secondary point around the dominating point. For left
	// halfsegments the segments extend to the right of the dominating
	// point, for right halfsegments to the left; in both cases the
	// orientation test gives a consistent angular order.
	o := Orient(h.Dom(), h.Sec(), g.Sec())
	switch {
	case o > 0:
		return -1
	case o < 0:
		return 1
	}
	// Collinear: shorter secondary distance first for determinism.
	dh := h.Dom().Dist(h.Sec())
	dg := g.Dom().Dist(g.Sec())
	switch {
	case dh < dg:
		return -1
	case dh > dg:
		return 1
	}
	return 0
}

// Less reports whether h precedes g in the halfsegment order.
func (h HalfSegment) Less(g HalfSegment) bool { return h.Cmp(g) < 0 }

// HalfSegments expands a set of segments into its ordered halfsegment
// sequence (two halfsegments per segment, sorted by Cmp).
func HalfSegments(segs []Segment) []HalfSegment {
	hs := make([]HalfSegment, 0, 2*len(segs))
	for _, s := range segs {
		hs = append(hs, HalfSegment{Seg: s, LeftDom: true}, HalfSegment{Seg: s, LeftDom: false})
	}
	SortHalfSegments(hs)
	return hs
}

// SortHalfSegments sorts hs by the halfsegment order, in place.
func SortHalfSegments(hs []HalfSegment) {
	slices.SortFunc(hs, HalfSegment.Cmp)
}

// SegmentsOf extracts the segment set of an ordered halfsegment sequence,
// taking each segment once (at its left halfsegment).
func SegmentsOf(hs []HalfSegment) []Segment {
	segs := make([]Segment, 0, len(hs)/2)
	for _, h := range hs {
		if h.LeftDom {
			segs = append(segs, h.Seg)
		}
	}
	return segs
}
