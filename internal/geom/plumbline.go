package geom

// Plumbline reports whether point p lies inside the area bounded by the
// given segments, using the classic "plumbline" (ray casting) technique
// referenced in Section 5.2 of the paper: count how many segments a
// vertical ray from p downward (equivalently, upward) crosses; an odd
// count means inside. The segment set must form the boundary of a
// well-formed region (every cycle closed); points exactly on the
// boundary are reported as inside.
func Plumbline(p Point, segs []Segment) bool {
	inside := false
	for _, s := range segs {
		if s.Contains(p) {
			return true // boundary counts as inside (regions are closed sets)
		}
		if crossesBelow(p, s) {
			inside = !inside
		}
	}
	return inside
}

// crossesBelow reports whether segment s crosses the vertical ray going
// straight down from p. Endpoint grazing is handled with the standard
// half-open rule: a segment covers the half-open x-interval
// [min(x), max(x)) of its endpoints, so shared vertices are counted
// exactly once.
func crossesBelow(p Point, s Segment) bool {
	a, b := s.Left, s.Right
	//molint:ignore float-eq the half-open [min x, max x) rule needs exact coordinate classification so shared vertices count exactly once
	if a.X == b.X {
		return false // vertical segments never cross a vertical ray properly
	}
	if !(min(a.X, b.X) <= p.X && p.X < max(a.X, b.X)) {
		return false
	}
	// y-coordinate of the segment at x = p.X.
	t := (p.X - a.X) / (b.X - a.X)
	y := a.Y + t*(b.Y-a.Y)
	return y < p.Y
}

// PlumblineCount returns the number of boundary segments strictly below
// point p that a downward vertical ray crosses. It exposes the raw
// count for tests and for callers that need the crossing parity and
// boundary cases separately: onBoundary is true if p lies on a segment.
func PlumblineCount(p Point, segs []Segment) (count int, onBoundary bool) {
	for _, s := range segs {
		if s.Contains(p) {
			onBoundary = true
		}
		if crossesBelow(p, s) {
			count++
		}
	}
	return count, onBoundary
}
