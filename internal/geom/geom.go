// Package geom provides the two-dimensional geometric primitives that
// underlie the discrete spatial data types of the moving objects data
// model (Forlizzi, Güting, Nardelli, Schneider; SIGMOD 2000).
//
// It defines points with the lexicographic order assumed by the paper,
// line segments in canonical (left endpoint < right endpoint) form, the
// segment predicates used by the type definitions of Section 3.2.2
// (p-intersect, touch, meet, collinear, overlap), halfsegments with the
// ROSE-algebra sweep order used by the data structures of Section 4, and
// supporting machinery: exact-ish epsilon-based comparisons, bounding
// boxes and the plumbline point-in-polygon test used by the inside
// algorithm of Section 5.2.
package geom

import (
	"fmt"
	"math"
)

// Eps is the tolerance used by all approximate floating point
// comparisons in this package. Coordinates whose difference is below Eps
// are considered equal. It is a variable so tests can tighten it, but
// callers should treat it as a constant.
var Eps = 1e-9

// ApproxEq reports whether a and b differ by less than Eps.
func ApproxEq(a, b float64) bool { return math.Abs(a-b) < Eps }

// ApproxZero reports whether a is within Eps of zero.
func ApproxZero(a float64) bool { return math.Abs(a) < Eps }

// Point is a point in the Euclidean plane. It corresponds to the
// carrier set Point = real × real of the paper; the undefined value of
// the point data type is represented one level up (see the spatial
// package) by a defined-flag, not by a sentinel coordinate.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Less reports whether p precedes q in the lexicographic order
// (x first, then y) that the paper fixes on points.
func (p Point) Less(q Point) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	return p.Y < q.Y
}

// Cmp returns -1, 0 or +1 according to the lexicographic order of p
// and q. The comparison is exact (bitwise on coordinates); use
// ApproxEqPoint for tolerant equality.
func (p Point) Cmp(q Point) int {
	switch {
	case p.X < q.X:
		return -1
	case p.X > q.X:
		return 1
	case p.Y < q.Y:
		return -1
	case p.Y > q.Y:
		return 1
	}
	return 0
}

// ApproxEqPoint reports whether p and q coincide up to Eps in both
// coordinates.
func ApproxEqPoint(p, q Point) bool {
	return ApproxEq(p.X, q.X) && ApproxEq(p.Y, q.Y)
}

// Add returns the vector sum p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector difference p−q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product of p and q viewed
// as vectors, i.e. p.X*q.Y − p.Y*q.X.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// String formats the point as "(x, y)".
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Orient returns the orientation of the ordered triple (a, b, c):
// +1 if counter-clockwise, −1 if clockwise, 0 if (approximately)
// collinear. The collinearity tolerance scales with the magnitude of the
// involved coordinates so that large geometries behave like small ones.
func Orient(a, b, c Point) int {
	d := (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
	// Scale-aware tolerance: the determinant has the dimension of an
	// area, so compare against Eps times a characteristic squared size.
	scale := math.Max(1, math.Max(b.Sub(a).Norm(), c.Sub(a).Norm()))
	if math.Abs(d) <= Eps*scale*scale {
		return 0
	}
	if d > 0 {
		return 1
	}
	return -1
}
