package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointOrder(t *testing.T) {
	cases := []struct {
		p, q Point
		want int
	}{
		{Pt(0, 0), Pt(1, 0), -1},
		{Pt(1, 0), Pt(0, 0), 1},
		{Pt(0, 0), Pt(0, 1), -1},
		{Pt(0, 1), Pt(0, 0), 1},
		{Pt(2, 3), Pt(2, 3), 0},
		{Pt(-1, 5), Pt(0, -5), -1},
	}
	for _, c := range cases {
		if got := c.p.Cmp(c.q); got != c.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", c.p, c.q, got, c.want)
		}
		if got := c.p.Less(c.q); got != (c.want < 0) {
			t.Errorf("Less(%v, %v) = %v, want %v", c.p, c.q, got, c.want < 0)
		}
	}
}

func TestPointOrderTotal(t *testing.T) {
	// Antisymmetry and totality of the lexicographic order, checked
	// property-style.
	f := func(ax, ay, bx, by float64) bool {
		p, q := Pt(ax, ay), Pt(bx, by)
		c1, c2 := p.Cmp(q), q.Cmp(p)
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == (p == q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointVectorOps(t *testing.T) {
	p, q := Pt(3, 4), Pt(1, -2)
	if got := p.Add(q); got != Pt(4, 2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -6-4 {
		t.Errorf("Cross = %v", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := Pt(0, 0).Dist(p); got != 5 {
		t.Errorf("Dist = %v", got)
	}
}

func TestOrient(t *testing.T) {
	a, b := Pt(0, 0), Pt(2, 0)
	if Orient(a, b, Pt(1, 1)) != 1 {
		t.Error("expected CCW")
	}
	if Orient(a, b, Pt(1, -1)) != -1 {
		t.Error("expected CW")
	}
	if Orient(a, b, Pt(5, 0)) != 0 {
		t.Error("expected collinear")
	}
	// Scale-aware tolerance: nearly-collinear at large magnitude.
	if Orient(Pt(0, 0), Pt(1e6, 0), Pt(2e6, 1e-5)) != 0 {
		t.Error("expected approximately collinear at large scale")
	}
}

func TestNewSegmentCanonical(t *testing.T) {
	s, err := NewSegment(Pt(2, 1), Pt(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if s.Left != Pt(0, 3) || s.Right != Pt(2, 1) {
		t.Errorf("not canonical: %v", s)
	}
	if _, err := NewSegment(Pt(1, 1), Pt(1, 1)); err == nil {
		t.Error("degenerate segment accepted")
	}
}

func TestSegmentCanonicalProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p, q := Pt(ax, ay), Pt(bx, by)
		if p == q {
			return true
		}
		s, err := NewSegment(p, q)
		if err != nil {
			return false
		}
		return s.Left.Less(s.Right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentContains(t *testing.T) {
	s := Seg(0, 0, 4, 4)
	if !s.Contains(Pt(2, 2)) {
		t.Error("midpoint not contained")
	}
	if !s.Contains(Pt(0, 0)) || !s.Contains(Pt(4, 4)) {
		t.Error("endpoints not contained")
	}
	if s.Contains(Pt(5, 5)) {
		t.Error("beyond right endpoint contained")
	}
	if s.Contains(Pt(2, 3)) {
		t.Error("off-line point contained")
	}
	if s.ContainsInterior(Pt(0, 0)) {
		t.Error("endpoint in interior")
	}
	if !s.ContainsInterior(Pt(1, 1)) {
		t.Error("interior point rejected")
	}
}

func TestPredicates(t *testing.T) {
	// Proper crossing.
	s := Seg(0, 0, 2, 2)
	u := Seg(0, 2, 2, 0)
	if !PIntersect(s, u) {
		t.Error("crossing segments: PIntersect false")
	}
	if Touch(s, u) || Meet(s, u) {
		t.Error("crossing segments should not touch or meet")
	}

	// Meeting at an endpoint.
	v := Seg(2, 2, 4, 0)
	if !Meet(s, v) {
		t.Error("meet at (2,2) not detected")
	}
	if PIntersect(s, v) {
		t.Error("meeting is not a proper intersection")
	}

	// Touch: endpoint of one in the interior of the other.
	w := Seg(1, 1, 1, 5)
	if !Touch(s, w) {
		t.Error("touch not detected")
	}
	if PIntersect(s, w) {
		t.Error("touch is not a proper intersection")
	}

	// Collinear overlap.
	x := Seg(1, 1, 3, 3)
	if !Collinear(s, x) {
		t.Error("collinear not detected")
	}
	if !Overlap(s, x) {
		t.Error("overlap not detected")
	}
	// Collinear but disjoint.
	y := Seg(3, 3, 5, 5)
	if !Collinear(s, y) {
		t.Error("collinear (disjoint) not detected")
	}
	if Overlap(s, y) {
		t.Error("disjoint collinear segments reported overlapping")
	}
	// Collinear meeting at a point only.
	z := Seg(2, 2, 5, 5)
	if Overlap(s, z) {
		t.Error("single shared point is not an overlap")
	}
}

func TestIntersect(t *testing.T) {
	s := Seg(0, 0, 4, 0)
	cases := []struct {
		t    Segment
		kind SegIntersection
		at   Point
	}{
		{Seg(2, -1, 2, 1), IntersectPoint, Pt(2, 0)},
		{Seg(0, 1, 4, 1), IntersectNone, Point{}},
		{Seg(1, 0, 3, 0), IntersectOverlap, Point{}},
		{Seg(4, 0, 6, 2), IntersectPoint, Pt(4, 0)},
		{Seg(4, 0, 6, 0), IntersectPoint, Pt(4, 0)}, // collinear, meets at endpoint
		{Seg(5, 0, 6, 0), IntersectNone, Point{}},   // collinear, disjoint
		{Seg(0, 2, 1, 1), IntersectNone, Point{}},   // would hit at (2,0) if extended
	}
	for _, c := range cases {
		kind, at := Intersect(s, c.t)
		if kind != c.kind {
			t.Errorf("Intersect(%v, %v) kind = %v, want %v", s, c.t, kind, c.kind)
			continue
		}
		if kind == IntersectPoint && !ApproxEqPoint(at, c.at) {
			t.Errorf("Intersect(%v, %v) at %v, want %v", s, c.t, at, c.at)
		}
	}
}

func TestIntersectSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy int8) bool {
		p1, p2 := Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by))
		p3, p4 := Pt(float64(cx), float64(cy)), Pt(float64(dx), float64(dy))
		if p1 == p2 || p3 == p4 {
			return true
		}
		s := MustSegment(p1, p2)
		u := MustSegment(p3, p4)
		k1, _ := Intersect(s, u)
		k2, _ := Intersect(u, s)
		return k1 == k2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDistances(t *testing.T) {
	s := Seg(0, 0, 4, 0)
	if got := s.DistToPoint(Pt(2, 3)); got != 3 {
		t.Errorf("interior projection distance = %v", got)
	}
	if got := s.DistToPoint(Pt(-3, 4)); got != 5 {
		t.Errorf("left endpoint distance = %v", got)
	}
	if got := s.DistToPoint(Pt(7, 4)); got != 5 {
		t.Errorf("right endpoint distance = %v", got)
	}
	if got := s.DistToSegment(Seg(0, 2, 4, 2)); got != 2 {
		t.Errorf("parallel distance = %v", got)
	}
	if got := s.DistToSegment(Seg(2, -1, 2, 1)); got != 0 {
		t.Errorf("intersecting distance = %v", got)
	}
}

func TestMergeSegs(t *testing.T) {
	// Three collinear pieces with overlap and adjacency merge into one.
	in := []Segment{Seg(0, 0, 2, 0), Seg(1, 0, 3, 0), Seg(3, 0, 5, 0)}
	out := MergeSegs(in)
	if len(out) != 1 || out[0] != Seg(0, 0, 5, 0) {
		t.Errorf("MergeSegs = %v", out)
	}
	// Disjoint collinear pieces stay apart.
	in = []Segment{Seg(0, 0, 1, 0), Seg(2, 0, 3, 0)}
	out = MergeSegs(in)
	if len(out) != 2 {
		t.Errorf("MergeSegs merged disjoint segments: %v", out)
	}
	// Non-collinear segments sharing an endpoint stay apart.
	in = []Segment{Seg(0, 0, 1, 1), Seg(1, 1, 2, 0)}
	out = MergeSegs(in)
	if len(out) != 2 {
		t.Errorf("MergeSegs merged non-collinear: %v", out)
	}
	// Input must not be mutated.
	in = []Segment{Seg(1, 0, 3, 0), Seg(0, 0, 2, 0)}
	_ = MergeSegs(in)
	if in[0] != Seg(1, 0, 3, 0) {
		t.Error("MergeSegs mutated its input")
	}
}

func TestHalfSegmentOrder(t *testing.T) {
	s := Seg(0, 0, 2, 2)
	left := HalfSegment{Seg: s, LeftDom: true}
	right := HalfSegment{Seg: s, LeftDom: false}
	if left.Dom() != Pt(0, 0) || right.Dom() != Pt(2, 2) {
		t.Fatal("dominating points wrong")
	}
	if left.Cmp(right) >= 0 {
		t.Error("left halfsegment should precede its right twin (smaller dom point)")
	}
	// Same dominating point: right halfsegments first.
	s2 := Seg(2, 2, 4, 0)
	l2 := HalfSegment{Seg: s2, LeftDom: true}
	if right.Cmp(l2) >= 0 {
		t.Error("right halfsegment must precede left halfsegment at same dom point")
	}
}

func TestHalfSegmentsRoundTrip(t *testing.T) {
	segs := []Segment{Seg(0, 0, 2, 2), Seg(0, 2, 2, 0), Seg(-1, 0, 0, 0)}
	hs := HalfSegments(segs)
	if len(hs) != 6 {
		t.Fatalf("len = %d", len(hs))
	}
	for i := 1; i < len(hs); i++ {
		if hs[i].Less(hs[i-1]) {
			t.Fatalf("not sorted at %d: %v > %v", i, hs[i-1], hs[i])
		}
	}
	back := SegmentsOf(hs)
	if len(back) != len(segs) {
		t.Fatalf("round trip lost segments: %v", back)
	}
	want := map[Segment]bool{}
	for _, s := range segs {
		want[s] = true
	}
	for _, s := range back {
		if !want[s] {
			t.Errorf("unexpected segment %v", s)
		}
	}
}

func TestHalfSegOrderProperty(t *testing.T) {
	f := func(ax, ay, bx, by int8, flag1, flag2 bool) bool {
		p1, p2 := Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by))
		if p1 == p2 {
			return true
		}
		s := MustSegment(p1, p2)
		h := HalfSegment{Seg: s, LeftDom: flag1}
		g := HalfSegment{Seg: s, LeftDom: flag2}
		return h.Cmp(g) == -g.Cmp(h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Error("EmptyRect not empty")
	}
	r := e.ExtendPoint(Pt(1, 2)).ExtendPoint(Pt(-1, 5))
	want := Rect{MinX: -1, MinY: 2, MaxX: 1, MaxY: 5}
	if r != want {
		t.Errorf("extend = %v, want %v", r, want)
	}
	if got := r.Area(); got != 6 {
		t.Errorf("area = %v", got)
	}
	if !r.Union(e).Intersects(r) {
		t.Error("union with empty lost the rectangle")
	}
	if r.Intersects(Rect{MinX: 2, MinY: 0, MaxX: 3, MaxY: 1}) {
		t.Error("disjoint rects intersect")
	}
	if !r.Intersects(Rect{MinX: 1, MinY: 5, MaxX: 3, MaxY: 7}) {
		t.Error("corner-touching rects should intersect")
	}
	if !r.ContainsPoint(Pt(0, 3)) || r.ContainsPoint(Pt(0, 6)) {
		t.Error("ContainsPoint wrong")
	}
}

func TestCube(t *testing.T) {
	c := EmptyCube()
	if !c.IsEmpty() {
		t.Error("EmptyCube not empty")
	}
	a := Cube{Rect: Rect{0, 0, 1, 1}, MinT: 0, MaxT: 1}
	b := Cube{Rect: Rect{0.5, 0.5, 2, 2}, MinT: 2, MaxT: 3}
	if a.Intersects(b) {
		t.Error("time-disjoint cubes intersect")
	}
	b.MinT = 0.5
	if !a.Intersects(b) {
		t.Error("overlapping cubes do not intersect")
	}
	u := a.Union(b)
	if u.MinT != 0 || u.MaxT != 3 || u.Rect.MaxX != 2 {
		t.Errorf("union = %+v", u)
	}
}

func TestSegmentBBox(t *testing.T) {
	s := Seg(0, 3, 2, 1)
	want := Rect{MinX: 0, MinY: 1, MaxX: 2, MaxY: 3}
	if s.BBox() != want {
		t.Errorf("BBox = %v, want %v", s.BBox(), want)
	}
}

func TestPlumbline(t *testing.T) {
	// Unit square.
	square := []Segment{
		Seg(0, 0, 4, 0), Seg(4, 0, 4, 4), Seg(0, 4, 4, 4), Seg(0, 0, 0, 4),
	}
	if !Plumbline(Pt(2, 2), square) {
		t.Error("center not inside")
	}
	if Plumbline(Pt(5, 2), square) {
		t.Error("outside right reported inside")
	}
	if Plumbline(Pt(2, -1), square) {
		t.Error("below reported inside")
	}
	if !Plumbline(Pt(2, 0), square) {
		t.Error("boundary not inside (regions are closed)")
	}
	if !Plumbline(Pt(0, 0), square) {
		t.Error("corner not inside")
	}

	// Square with a square hole: segments of both cycles together.
	hole := []Segment{
		Seg(1, 1, 3, 1), Seg(3, 1, 3, 3), Seg(1, 3, 3, 3), Seg(1, 1, 1, 3),
	}
	both := append(append([]Segment{}, square...), hole...)
	if Plumbline(Pt(2, 2), both) {
		t.Error("point in hole reported inside")
	}
	if !Plumbline(Pt(0.5, 2), both) {
		t.Error("point between outer cycle and hole not inside")
	}
	if !Plumbline(Pt(2, 1), both) {
		t.Error("hole boundary belongs to the region")
	}
}

func TestPlumblineVertexGrazing(t *testing.T) {
	// Triangle with an apex directly above the query point: the ray
	// through the shared vertex must count the two incident edges once.
	tri := []Segment{Seg(0, 0, 4, 0), Seg(0, 0, 2, 2), Seg(2, 2, 4, 0)}
	if !Plumbline(Pt(2, 1), tri) {
		t.Error("inside point under apex missed")
	}
	if Plumbline(Pt(2, 3), tri) {
		t.Error("outside point above apex reported inside")
	}
}

func TestPlumblineCount(t *testing.T) {
	square := []Segment{
		Seg(0, 0, 4, 0), Seg(4, 0, 4, 4), Seg(0, 4, 4, 4), Seg(0, 0, 0, 4),
	}
	n, onB := PlumblineCount(Pt(2, 2), square)
	if n != 1 || onB {
		t.Errorf("count = %d, onBoundary = %v", n, onB)
	}
	n, onB = PlumblineCount(Pt(2, 5), square)
	if n != 2 || onB {
		t.Errorf("above: count = %d, onBoundary = %v", n, onB)
	}
	_, onB = PlumblineCount(Pt(4, 2), square)
	if !onB {
		t.Error("boundary point not flagged")
	}
}

func TestApproxHelpers(t *testing.T) {
	if !ApproxEq(1, 1+Eps/2) || ApproxEq(1, 1+Eps*2) {
		t.Error("ApproxEq tolerance wrong")
	}
	if !ApproxZero(Eps/2) || ApproxZero(2*Eps) {
		t.Error("ApproxZero tolerance wrong")
	}
	if !ApproxEqPoint(Pt(1, 2), Pt(1+Eps/2, 2-Eps/2)) {
		t.Error("ApproxEqPoint too strict")
	}
	if math.IsNaN(Pt(0, 0).Dist(Pt(3, 4))) {
		t.Error("unexpected NaN")
	}
}

func TestHalfSegmentOrderLaws(t *testing.T) {
	// Antisymmetry and transitivity of the ROSE halfsegment order over
	// random small-coordinate halfsegments (the sort and the storage
	// layout both assume a strict weak ordering).
	rng := []int8{-3, -2, -1, 0, 1, 2, 3}
	var hs []HalfSegment
	for _, ax := range rng {
		for _, ay := range []int8{-1, 0, 2} {
			for _, bx := range []int8{-2, 1, 3} {
				for _, by := range rng {
					p, q := Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by))
					if p == q {
						continue
					}
					s := MustSegment(p, q)
					hs = append(hs, HalfSegment{Seg: s, LeftDom: true}, HalfSegment{Seg: s, LeftDom: false})
				}
			}
		}
	}
	// Antisymmetry on a sample.
	for i := 0; i < len(hs); i += 7 {
		for j := 0; j < len(hs); j += 11 {
			if hs[i].Cmp(hs[j]) != -hs[j].Cmp(hs[i]) {
				t.Fatalf("antisymmetry violated: %v vs %v", hs[i], hs[j])
			}
		}
	}
	// Transitivity on sampled triples.
	for i := 0; i < len(hs); i += 13 {
		for j := 0; j < len(hs); j += 17 {
			for k := 0; k < len(hs); k += 19 {
				a, b, c := hs[i], hs[j], hs[k]
				if a.Cmp(b) < 0 && b.Cmp(c) < 0 && a.Cmp(c) > 0 {
					t.Fatalf("transitivity violated: %v < %v < %v but not %v < %v", a, b, b, a, c)
				}
			}
		}
	}
	// Sorting then checking pairwise order agreement.
	SortHalfSegments(hs)
	for i := 1; i < len(hs); i++ {
		if hs[i].Cmp(hs[i-1]) < 0 {
			t.Fatalf("sort disagreement at %d", i)
		}
	}
}
