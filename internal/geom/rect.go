package geom

import "fmt"

// Rect is an axis-aligned rectangle used as a 2D bounding box. The zero
// value is not a valid rectangle; use EmptyRect to start accumulating.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyRect returns the identity element for Union: a rectangle that
// contains nothing and disappears when united with any real rectangle.
func EmptyRect() Rect {
	const inf = 1e308
	return Rect{MinX: inf, MinY: inf, MaxX: -inf, MaxY: -inf}
}

// IsEmpty reports whether r is empty (contains no point).
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: min(r.MinX, s.MinX), MinY: min(r.MinY, s.MinY),
		MaxX: max(r.MaxX, s.MaxX), MaxY: max(r.MaxY, s.MaxY),
	}
}

// ExtendPoint returns the smallest rectangle containing r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return r.Union(Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y})
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// ContainsPoint reports whether p lies in r (boundary included).
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Area returns the area of r (zero for empty rectangles).
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.MaxX - r.MinX) * (r.MaxY - r.MinY)
}

// String formats the rectangle as "[minx,miny..maxx,maxy]".
func (r Rect) String() string {
	if r.IsEmpty() {
		return "[empty]"
	}
	return fmt.Sprintf("[%g,%g..%g,%g]", r.MinX, r.MinY, r.MaxX, r.MaxY)
}

// Cube is an axis-aligned box in (x, y, t) space: the 3D bounding cube
// stored with spatial unit types (Section 4.2).
type Cube struct {
	Rect       Rect
	MinT, MaxT float64
}

// EmptyCube returns the identity element for Cube.Union.
func EmptyCube() Cube {
	const inf = 1e308
	return Cube{Rect: EmptyRect(), MinT: inf, MaxT: -inf}
}

// IsEmpty reports whether c contains no point.
func (c Cube) IsEmpty() bool { return c.Rect.IsEmpty() || c.MinT > c.MaxT }

// Union returns the smallest cube containing both c and d.
func (c Cube) Union(d Cube) Cube {
	if c.IsEmpty() {
		return d
	}
	if d.IsEmpty() {
		return c
	}
	return Cube{
		Rect: c.Rect.Union(d.Rect),
		MinT: min(c.MinT, d.MinT),
		MaxT: max(c.MaxT, d.MaxT),
	}
}

// Intersects reports whether c and d share at least one point.
func (c Cube) Intersects(d Cube) bool {
	if c.IsEmpty() || d.IsEmpty() {
		return false
	}
	return c.Rect.Intersects(d.Rect) && c.MinT <= d.MaxT && d.MinT <= c.MaxT
}
