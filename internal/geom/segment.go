package geom

import (
	"fmt"
	"slices"
)

// Segment is a line segment in canonical form: Left < Right in the
// lexicographic point order. It corresponds to the paper's carrier set
// Seg = {(u, v) | u, v ∈ Point, u < v}. Use NewSegment to construct a
// canonical segment from arbitrary endpoints.
type Segment struct {
	Left, Right Point
}

// NewSegment returns the canonical segment with endpoints p and q,
// swapping them if necessary. It returns an error if p == q, since
// degenerate segments are excluded from Seg.
func NewSegment(p, q Point) (Segment, error) {
	switch p.Cmp(q) {
	case -1:
		return Segment{Left: p, Right: q}, nil
	case 1:
		return Segment{Left: q, Right: p}, nil
	}
	return Segment{}, fmt.Errorf("geom: degenerate segment at %v", p)
}

// MustSegment is like NewSegment but panics on a degenerate segment.
// It is intended for literals in tests and examples.
func MustSegment(p, q Point) Segment {
	s, err := NewSegment(p, q)
	if err != nil {
		panic(err)
	}
	return s
}

// Seg is shorthand for MustSegment(Pt(x1,y1), Pt(x2,y2)).
func Seg(x1, y1, x2, y2 float64) Segment {
	return MustSegment(Pt(x1, y1), Pt(x2, y2))
}

// Cmp orders segments lexicographically by (Left, Right). It induces
// the canonical storage order for segment sets.
func (s Segment) Cmp(t Segment) int {
	if c := s.Left.Cmp(t.Left); c != 0 {
		return c
	}
	return s.Right.Cmp(t.Right)
}

// Less reports whether s precedes t in the canonical segment order.
func (s Segment) Less(t Segment) bool { return s.Cmp(t) < 0 }

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return s.Left.Dist(s.Right) }

// Dir returns the direction vector Right − Left (not normalised).
func (s Segment) Dir() Point { return s.Right.Sub(s.Left) }

// Midpoint returns the midpoint of the segment.
func (s Segment) Midpoint() Point {
	return Point{(s.Left.X + s.Right.X) / 2, (s.Left.Y + s.Right.Y) / 2}
}

// String formats the segment as "(x1, y1)-(x2, y2)".
func (s Segment) String() string { return fmt.Sprintf("%v-%v", s.Left, s.Right) }

// BBox returns the axis-aligned bounding box of the segment.
func (s Segment) BBox() Rect {
	return Rect{
		MinX: s.Left.X, // canonical form guarantees Left.X <= Right.X
		MaxX: s.Right.X,
		MinY: min(s.Left.Y, s.Right.Y),
		MaxY: max(s.Left.Y, s.Right.Y),
	}
}

// HasEndpoint reports whether p coincides (exactly) with one of the
// segment's endpoints.
func (s Segment) HasEndpoint(p Point) bool { return p == s.Left || p == s.Right }

// Contains reports whether point p lies on the segment (endpoints
// included), up to Eps.
func (s Segment) Contains(p Point) bool {
	if Orient(s.Left, s.Right, p) != 0 {
		return false
	}
	// p is on the supporting line; check the parameter range.
	d := s.Dir()
	t := p.Sub(s.Left).Dot(d) / d.Dot(d)
	return t >= -Eps && t <= 1+Eps
}

// ContainsInterior reports whether p lies on the segment excluding its
// endpoints.
func (s Segment) ContainsInterior(p Point) bool {
	return s.Contains(p) && !ApproxEqPoint(p, s.Left) && !ApproxEqPoint(p, s.Right)
}

// Collinear reports whether s and t lie on the same infinite line, as
// required by the line data type definition (predicate "collinear").
func Collinear(s, t Segment) bool {
	return Orient(s.Left, s.Right, t.Left) == 0 && Orient(s.Left, s.Right, t.Right) == 0
}

// Meet reports whether s and t share a common endpoint (the paper's
// "meet" predicate).
func Meet(s, t Segment) bool {
	return s.Left == t.Left || s.Left == t.Right || s.Right == t.Left || s.Right == t.Right
}

// Touch reports whether an endpoint of one segment lies in the interior
// of the other (the paper's "touch" predicate).
func Touch(s, t Segment) bool {
	return t.ContainsInterior(s.Left) || t.ContainsInterior(s.Right) ||
		s.ContainsInterior(t.Left) || s.ContainsInterior(t.Right)
}

// PIntersect reports whether s and t properly intersect, i.e. cross in
// a point interior to both (the paper's "p-intersect" predicate).
func PIntersect(s, t Segment) bool {
	o1 := Orient(s.Left, s.Right, t.Left)
	o2 := Orient(s.Left, s.Right, t.Right)
	o3 := Orient(t.Left, t.Right, s.Left)
	o4 := Orient(t.Left, t.Right, s.Right)
	return o1*o2 < 0 && o3*o4 < 0
}

// Overlap reports whether s and t are collinear and share more than a
// single point. Overlapping collinear segments are forbidden inside a
// line value (they would not be a unique representation).
func Overlap(s, t Segment) bool {
	if !Collinear(s, t) {
		return false
	}
	// Project onto the dominant axis of s and compare parameter ranges.
	d := s.Dir()
	proj := func(p Point) float64 { return p.Sub(s.Left).Dot(d) }
	lo, hi := proj(t.Left), proj(t.Right)
	if lo > hi {
		lo, hi = hi, lo
	}
	slo, shi := 0.0, d.Dot(d)
	scale := Eps * max(1, shi)
	return lo < shi-scale && hi > slo+scale
}

// SegIntersection describes how two segments intersect.
type SegIntersection int

// The possible intersection kinds returned by Intersect.
const (
	IntersectNone    SegIntersection = iota // disjoint
	IntersectPoint                          // a single point (proper crossing, touch, or meet)
	IntersectOverlap                        // collinear with a shared sub-segment
)

// Intersect classifies the intersection of s and t and, for a single
// point intersection, returns that point.
func Intersect(s, t Segment) (SegIntersection, Point) {
	if Collinear(s, t) {
		if Overlap(s, t) {
			return IntersectOverlap, Point{}
		}
		// Collinear but not overlapping: they can still meet in an endpoint.
		switch {
		case s.Left == t.Right || s.Left == t.Left:
			return IntersectPoint, s.Left
		case s.Right == t.Left || s.Right == t.Right:
			return IntersectPoint, s.Right
		case t.Contains(s.Left):
			return IntersectPoint, s.Left
		case t.Contains(s.Right):
			return IntersectPoint, s.Right
		case s.Contains(t.Left):
			return IntersectPoint, t.Left
		}
		return IntersectNone, Point{}
	}
	d1, d2 := s.Dir(), t.Dir()
	den := d1.Cross(d2)
	if ApproxZero(den) {
		// Parallel, not collinear.
		return IntersectNone, Point{}
	}
	w := t.Left.Sub(s.Left)
	u := w.Cross(d2) / den // parameter on s
	v := w.Cross(d1) / den // parameter on t
	if u < -Eps || u > 1+Eps || v < -Eps || v > 1+Eps {
		return IntersectNone, Point{}
	}
	return IntersectPoint, s.Left.Add(d1.Scale(u))
}

// DistToPoint returns the Euclidean distance from the segment to point p.
func (s Segment) DistToPoint(p Point) float64 {
	d := s.Dir()
	t := p.Sub(s.Left).Dot(d) / d.Dot(d)
	switch {
	case t <= 0:
		return p.Dist(s.Left)
	case t >= 1:
		return p.Dist(s.Right)
	}
	return p.Dist(s.Left.Add(d.Scale(t)))
}

// DistToSegment returns the Euclidean distance between segments s and t
// (zero if they intersect).
func (s Segment) DistToSegment(t Segment) float64 {
	if k, _ := Intersect(s, t); k != IntersectNone {
		return 0
	}
	return min(
		min(s.DistToPoint(t.Left), s.DistToPoint(t.Right)),
		min(t.DistToPoint(s.Left), t.DistToPoint(s.Right)),
	)
}

// MergeSegs merges collinear overlapping or collinear adjacent segments
// into maximal ones and returns the resulting set in canonical order.
// It implements the paper's merge-segs function used by the ι_s/ι_e
// endpoint cleanup of uline (Section 3.2.6) and is also the final step
// of trajectory computation.
func MergeSegs(segs []Segment) []Segment {
	if len(segs) <= 1 {
		out := make([]Segment, len(segs))
		copy(out, segs)
		return out
	}
	work := make([]Segment, len(segs))
	copy(work, segs)
	// Repeatedly merge a pair of collinear, overlapping-or-meeting
	// segments until a fixed point is reached. The input sets are small
	// (cleanup at unit endpoints), so the quadratic pass is acceptable;
	// trajectory computation pre-groups by supporting line.
	for {
		merged := false
		for i := 0; i < len(work) && !merged; i++ {
			for j := i + 1; j < len(work) && !merged; j++ {
				s, t := work[i], work[j]
				if !Collinear(s, t) {
					continue
				}
				if !Overlap(s, t) && !(Meet(s, t) || Touch(s, t)) {
					continue
				}
				// Union of two collinear segments that share at least a
				// point is the segment spanned by the extreme endpoints.
				lo, hi := s.Left, s.Right
				if t.Left.Less(lo) {
					lo = t.Left
				}
				if hi.Less(t.Right) {
					hi = t.Right
				}
				work[i] = Segment{Left: lo, Right: hi}
				work = append(work[:j], work[j+1:]...)
				merged = true
			}
		}
		if !merged {
			break
		}
	}
	SortSegments(work)
	return work
}

// SortSegments sorts segs in the canonical segment order, in place.
func SortSegments(segs []Segment) {
	slices.SortFunc(segs, Segment.Cmp)
}
