package movingdb_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesAndTools builds and runs every example and every command
// once with small parameters, so the runnable surface of the repository
// cannot rot. Skipped with -short (it compiles several binaries).
func TestExamplesAndTools(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example execution in -short mode")
	}
	runs := []struct {
		name string
		args []string
		want string // substring expected in the combined output
	}{
		{"quickstart", []string{"run", "./examples/quickstart"}, "inside the zone"},
		{"flights", []string{"run", "./examples/flights", "-n", "12"}, "Q2"},
		{"hurricane", []string{"run", "./examples/hurricane", "-ships", "2"}, "storm:"},
		{"storagedemo", []string{"run", "./examples/storagedemo"}, "round trip ok"},
		{"wildlife", []string{"run", "./examples/wildlife"}, "herd size over time"},
		{"serving", []string{"run", "./examples/serving"}, "timed-out query: HTTP 408"},
		{"motables", []string{"run", "./cmd/motables"}, "mapping(uregion)"},
		{"mofigures", []string{"run", "./cmd/mofigures", "-fig", "8"}, "refinement"},
		{"moquery", []string{"run", "./cmd/moquery", "-n", "10"}, "(airline: string"},
		{"mobench-e6", []string{"run", "./cmd/mobench", "-quick", "-exp", "E6"}, "refinement partition"},
	}
	for _, r := range runs {
		r := r
		t.Run(r.name, func(t *testing.T) {
			out, err := exec.Command("go", r.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%v: %v\n%s", r.args, err, out)
			}
			if !strings.Contains(string(out), r.want) {
				t.Fatalf("output of %v missing %q:\n%s", r.args, r.want, out)
			}
		})
	}
}
