// Package movingdb is a Go implementation of the discrete data model for
// moving objects databases of Forlizzi, Güting, Nardelli and Schneider
// (SIGMOD 2000): spatio-temporal data types — moving points, moving
// reals, moving regions and friends — in the sliced representation,
// together with the paper's data structures (ordered halfsegment and
// unit arrays, root records plus database arrays) and algorithms
// (atinstant by binary search, inside via the refinement partition).
//
// The package re-exports the user-facing types of the internal
// packages as a single import surface:
//
//	flight, _ := movingdb.MPointFromSamples([]movingdb.Sample{
//		{T: 0, P: movingdb.Pt(0, 0)},
//		{T: 3600, P: movingdb.Pt(400, 300)},
//	})
//	storm := gen.Storm(0, 24, 12, 600)   // internal/workload
//	inside := flight.Inside(storm)       // moving bool, Section 5.2
//	fmt.Println(inside.WhenTrue())
//
// See the examples directory for complete programs and DESIGN.md for the
// mapping from paper sections to packages.
package movingdb

import (
	"io"

	"movingdb/internal/base"
	"movingdb/internal/geom"
	"movingdb/internal/moving"
	"movingdb/internal/spatial"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
)

// Geometric primitives.
type (
	// Point is a point in the Euclidean plane.
	Point = geom.Point
	// Segment is a line segment in canonical form.
	Segment = geom.Segment
	// Rect is an axis-aligned bounding box.
	Rect = geom.Rect
	// Cube is a bounding box in (x, y, t) space.
	Cube = geom.Cube
)

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Seg constructs a canonical segment from two coordinate pairs.
func Seg(x1, y1, x2, y2 float64) Segment { return geom.Seg(x1, y1, x2, y2) }

// Time domain.
type (
	// Instant is a point on the time axis (seconds; Unix epoch for
	// conversions to time.Time).
	Instant = temporal.Instant
	// Interval is a time interval with closure flags.
	Interval = temporal.Interval
	// Periods is the range(instant) type: canonical disjoint interval
	// sets.
	Periods = temporal.Periods
)

// Closed returns the closed interval [s, e].
func Closed(s, e Instant) Interval { return temporal.Closed(s, e) }

// Open returns the open interval (s, e).
func Open(s, e Instant) Interval { return temporal.Open(s, e) }

// Spatial data types (Section 3.2.2).
type (
	// Points is a finite point set in canonical order.
	Points = spatial.Points
	// Line is a finite set of segments stored as ordered halfsegments.
	Line = spatial.Line
	// Cycle is a simple polygon.
	Cycle = spatial.Cycle
	// Face is an outer cycle with hole cycles.
	Face = spatial.Face
	// Region is a set of edge-disjoint faces.
	Region = spatial.Region
)

// NewPoints builds a canonical point set.
func NewPoints(pts ...Point) Points { return spatial.NewPoints(pts...) }

// NewLine builds a line value, rejecting collinear overlapping segments.
func NewLine(segs ...Segment) (Line, error) { return spatial.NewLine(segs...) }

// PolygonRegion builds a single-face region from an outer ring and
// optional hole rings, fully validated.
func PolygonRegion(outer []Point, holes ...[]Point) (Region, error) {
	return spatial.PolygonRegion(outer, holes...)
}

// Ring builds a vertex ring from coordinate pairs.
func Ring(coords ...float64) []Point { return spatial.Ring(coords...) }

// CloseRegion assembles a region value from a boundary segment soup (the
// close operation of Section 4.1).
func CloseRegion(segs []Segment) (Region, error) { return spatial.Close(segs) }

// Unit types of the sliced representation (Sections 3.2.4–3.2.6).
type (
	// UBool is a constant boolean unit.
	UBool = units.UBool
	// UInt is a constant integer unit.
	UInt = units.UInt
	// UString is a constant string unit.
	UString = units.UString
	// UReal is a quadratic / √quadratic unit.
	UReal = units.UReal
	// UPoint is a linearly moving point unit.
	UPoint = units.UPoint
	// UPoints is a unit of simultaneously moving points.
	UPoints = units.UPoints
	// ULine is a unit of non-rotating moving segments.
	ULine = units.ULine
	// URegion is a unit of moving faces.
	URegion = units.URegion
	// MPointMotion is a linear motion (x0+x1·t, y0+y1·t).
	MPointMotion = units.MPoint
	// MSeg is a non-rotating moving segment.
	MSeg = units.MSeg
	// MCycle is a moving cycle (ring of motions).
	MCycle = units.MCycle
	// MFace is a moving face.
	MFace = units.MFace
)

// Moving (temporal) data types in sliced representation.
type (
	// MBool is the moving bool: mapping(const(bool)).
	MBool = moving.MBool
	// MInt is the moving int: mapping(const(int)).
	MInt = moving.MInt
	// MString is the moving string: mapping(const(string)).
	MString = moving.MString
	// MReal is the moving real: mapping(ureal).
	MReal = moving.MReal
	// MPoint is the moving point: mapping(upoint).
	MPoint = moving.MPoint
	// MPoints is the moving point set: mapping(upoints).
	MPoints = moving.MPoints
	// MLine is the moving line: mapping(uline).
	MLine = moving.MLine
	// MRegion is the moving region: mapping(uregion).
	MRegion = moving.MRegion
	// Sample is a trajectory observation for MPointFromSamples.
	Sample = moving.Sample
)

// Intime pairs for the intime(α) types.
type (
	// IReal is intime(real).
	IReal = base.Intime[float64]
	// IPoint is intime(point).
	IPoint = base.Intime[Point]
)

// MPointFromSamples builds a moving point from time-ordered
// observations with linear interpolation.
func MPointFromSamples(samples []Sample) (MPoint, error) {
	return moving.MPointFromSamples(samples)
}

// NewMRegion validates uregion units and builds a moving region.
func NewMRegion(us ...URegion) (MRegion, error) { return moving.NewMRegion(us...) }

// StaticMRegion lifts a static region to a moving region constant over
// iv.
func StaticMRegion(r Region, iv Interval) MRegion { return moving.StaticMRegion(r, iv) }

// ReadSamplesCSV reads trajectory observations from CSV rows "t,x,y".
func ReadSamplesCSV(r io.Reader) ([]Sample, error) { return moving.ReadSamplesCSV(r) }

// SimplifySamples reduces a sample sequence with a time-parameterised
// Douglas–Peucker pass, bounding the spatial error by eps at every
// instant.
func SimplifySamples(samples []Sample, eps float64) []Sample {
	return moving.SimplifySamples(samples, eps)
}

// MPointFromCSV reads, optionally simplifies (eps > 0), and builds a
// moving point in one step.
func MPointFromCSV(r io.Reader, eps float64) (MPoint, error) {
	return moving.MPointFromCSV(r, eps)
}
