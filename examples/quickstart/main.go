// Quickstart: build a moving point from trajectory samples, snapshot it,
// project it into space, and intersect it with a region — the smallest
// useful tour of the moving objects API.
package main

import (
	"fmt"

	"movingdb"
)

func main() {
	// A delivery van, sampled four times over an hour (time in seconds).
	van, err := movingdb.MPointFromSamples([]movingdb.Sample{
		{T: 0, P: movingdb.Pt(0, 0)},
		{T: 900, P: movingdb.Pt(3, 4)},
		{T: 2400, P: movingdb.Pt(3, 10)},
		{T: 3600, P: movingdb.Pt(9, 10)},
	})
	if err != nil {
		panic(err)
	}

	// atinstant: where was the van halfway through?
	fmt.Println("position at t=1800:", van.AtInstant(1800))

	// deftime and projection into space.
	fmt.Println("defined during:   ", van.DefTime())
	fmt.Printf("trajectory length: %.2f km\n", van.Length())

	// Speed is a moving real; take its maximum.
	if mx, at, ok := van.Speed().Max(); ok {
		fmt.Printf("fastest leg:       %.4f km/s at t=%v\n", mx, at)
	}

	// A (static) delivery zone; when was the van inside?
	zone, err := movingdb.PolygonRegion(movingdb.Ring(2, 2, 12, 2, 12, 12, 2, 12))
	if err != nil {
		panic(err)
	}
	inside := van.InsideRegion(zone)
	fmt.Println("inside the zone:  ", inside.WhenTrue())

	// Restrict the movement to that time and measure it.
	inZone := van.When(inside)
	fmt.Printf("distance in zone:  %.2f km\n", inZone.Length())
}
