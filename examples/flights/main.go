// Flights: the running example of Section 2 of the paper, executed end
// to end on the mini relational engine — a planes relation with an
// mpoint attribute, the "Lufthansa flights longer than L" selection, and
// the "pairs of planes closer than d" spatio-temporal join.
package main

import (
	"flag"
	"fmt"

	"movingdb/internal/db"
	"movingdb/internal/moving"
	"movingdb/internal/workload"
)

func main() {
	n := flag.Int("n", 40, "number of flights")
	seed := flag.Int64("seed", 2000, "workload seed")
	minLen := flag.Float64("minlen", 500, "trajectory length threshold (query 1)")
	maxDist := flag.Float64("maxdist", 25, "closest approach threshold (query 2)")
	flag.Parse()

	// planes(airline: string, id: string, flight: mpoint)
	planes := db.NewRelation("planes", db.Schema{
		{Name: "airline", Type: db.TString},
		{Name: "id", Type: db.TString},
		{Name: "flight", Type: db.TMPoint},
	})
	for _, f := range workload.New(*seed).Flights(*n, 200) {
		planes.MustInsert(db.Tuple{f.Airline, f.ID, f.Flight})
	}
	fmt.Printf("planes%v with %d tuples\n\n", planes.Schema, planes.Len())

	// Query 1:
	//   SELECT airline, id FROM planes
	//   WHERE airline = "Lufthansa" AND length(trajectory(flight)) > minlen
	fmt.Printf("Q1: Lufthansa flights with trajectory longer than %.0f\n", *minLen)
	q1 := planes.Select(func(t db.Tuple) bool {
		return db.Get[string](planes, t, "airline") == "Lufthansa" &&
			db.Get[moving.MPoint](planes, t, "flight").Trajectory().Length() > *minLen
	})
	res1, err := q1.Project("airline", "id")
	if err != nil {
		panic(err)
	}
	for _, t := range res1.Scan() {
		fl := q1.Select(func(u db.Tuple) bool { return db.Get[string](q1, u, "id") == t[1] }).Scan()[0]
		mp := db.Get[moving.MPoint](q1, fl, "flight")
		fmt.Printf("  %-10s %-6s length=%.1f\n", t[0], t[1], mp.Length())
	}
	fmt.Printf("  (%d rows)\n\n", res1.Len())

	// Query 2 (spatio-temporal join):
	//   SELECT p.airline, p.id, q.airline, q.id FROM planes p, planes q
	//   WHERE val(initial(atmin(distance(p.flight, q.flight)))) < maxdist
	fmt.Printf("Q2: pairs of planes that came closer than %.0f\n", *maxDist)
	pairs := 0
	for i, a := range planes.Scan() {
		for j, b := range planes.Scan() {
			if i >= j {
				continue
			}
			pa := db.Get[moving.MPoint](planes, a, "flight")
			pb := db.Get[moving.MPoint](planes, b, "flight")
			d := pa.Distance(pb)
			first, ok := d.AtMin().Initial()
			if !ok || first.Val >= *maxDist {
				continue
			}
			pairs++
			fmt.Printf("  %-10s %-6s ~ %-10s %-6s  min distance %.2f at t=%.1f\n",
				a[0], a[1], b[0], b[1], first.Val, float64(first.Inst))
		}
	}
	fmt.Printf("  (%d pairs)\n", pairs)
}
