// Wildlife: tracking a herd as a moving point set (mpoints) together
// with individually tracked animals (mpoint) — exercising upoints units,
// the lifted count aggregate, distance comparisons between moving reals
// (LessThan on √quadratics), and region interaction.
package main

import (
	"flag"
	"fmt"

	"movingdb/internal/geom"
	"movingdb/internal/moving"
	"movingdb/internal/spatial"
	"movingdb/internal/temporal"
	"movingdb/internal/units"
	"movingdb/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 12, "workload seed")
	flag.Parse()
	g := workload.New(*seed)

	// A herd of three animals moving in loose formation: one upoints
	// unit per observation window; one animal joins late.
	mkMotion := func(t0 temporal.Instant, p0 geom.Point, t1 temporal.Instant, p1 geom.Point) units.MPoint {
		m, err := units.MPointThrough(t0, p0, t1, p1)
		if err != nil {
			panic(err)
		}
		return m
	}
	a1 := mkMotion(0, geom.Pt(100, 100), 100, geom.Pt(200, 150))
	a2 := mkMotion(0, geom.Pt(110, 95), 100, geom.Pt(210, 145))
	a3 := mkMotion(50, geom.Pt(140, 140), 100, geom.Pt(205, 160))
	herd := moving.MustMPoints(
		units.MustUPoints(temporal.RightHalfOpen(0, 50), a1, a2),
		units.MustUPoints(temporal.Closed(50, 100), a1, a2, a3),
	)
	count := herd.Count()
	fmt.Println("herd size over time:")
	for _, u := range count.M.Units() {
		fmt.Printf("  %v: %v animals\n", u.Iv, u.V)
	}
	snap, _ := herd.AtInstant(75)
	fmt.Printf("positions at t=75: %v\n\n", snap)

	// Two individually collared wolves; when is wolf A closer to the den
	// than wolf B? (LessThan on two moving distances — √quadratics.)
	den := geom.Pt(500, 500)
	wolfA := g.RandomTrajectory(0, 20, 5, 3)
	wolfB := g.RandomTrajectory(0, 20, 5, 3)
	dA := wolfA.DistanceToPoint(den)
	dB := wolfB.DistanceToPoint(den)
	closer, ok := dA.LessThan(dB)
	if !ok {
		panic("distance comparison not representable")
	}
	fmt.Printf("wolf A closer to the den than wolf B for %.1f of %.1f time units\n",
		closer.TrueDuration(), wolfA.DefTime().Duration())
	if mn, at, ok := dA.Min(); ok {
		fmt.Printf("wolf A closest approach to den: %.1f at t=%.1f\n\n", mn, float64(at))
	}

	// A protected reserve: which part of the herd's joint trajectory
	// lies inside it? (line clipped to region)
	reserve := spatial.MustPolygonRegion(spatial.Ring(150, 100, 260, 100, 260, 200, 150, 200))
	traj := herd.Trajectory()
	inReserve := traj.ClippedToRegion(reserve)
	fmt.Printf("herd trajectory: %.1f total, %.1f inside the reserve\n",
		traj.Length(), inReserve.Length())

	// Two storm systems: do they ever collide? (lifted intersects)
	s1 := g.Storm(0, 24, 10, 10)
	s2 := g.Storm(0, 24, 10, 10)
	meet := s1.Intersects(s2)
	if meet.Sometimes() {
		fmt.Printf("storm systems overlap during %v\n", meet.WhenTrue())
	} else {
		fmt.Println("storm systems never overlap")
	}
}
