// Serving: stand up the v1 HTTP API over a generated catalog and walk
// its surface — a paginated object listing, a SQL query under a
// deadline, a deliberately timed-out query showing the 408 error
// envelope, and the observability snapshot — then shut down gracefully.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"movingdb/internal/db"
	"movingdb/internal/moving"
	"movingdb/internal/server"
	"movingdb/internal/workload"
)

func getJSON(base, path string) (int, map[string]any) {
	resp, err := http.Get(base + path)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var body map[string]any
	if err := json.Unmarshal(raw, &body); err != nil {
		log.Fatalf("bad json from %s: %v", path, err)
	}
	return resp.StatusCode, body
}

func main() {
	// A catalog of flights and storms, as in the paper's Section 2
	// scenario, plus the flights as tracked objects for the index.
	g := workload.New(42)
	planes := db.NewRelation("planes", db.Schema{
		{Name: "airline", Type: db.TString},
		{Name: "id", Type: db.TString},
		{Name: "flight", Type: db.TMPoint},
	})
	var ids []string
	var objects []moving.MPoint
	for _, f := range g.Flights(40, 200) {
		planes.MustInsert(db.Tuple{f.Airline, f.ID, f.Flight})
		ids = append(ids, f.ID)
		objects = append(objects, f.Flight)
	}
	storms := db.NewRelation("storms", db.Schema{
		{Name: "name", Type: db.TString},
		{Name: "extent", Type: db.TMRegion},
	})
	for i := 0; i < 60; i++ {
		storms.MustInsert(db.Tuple{fmt.Sprintf("S%02d", i), g.Storm(0, 60, 10, 5)})
	}

	// The options struct replaces the old positional constructor: data,
	// deadlines, limits and logging in one place.
	s, err := server.New(server.Config{
		Catalog:            db.Catalog{"planes": planes, "storms": storms},
		ObjectIDs:          ids,
		Objects:            objects,
		QueryTimeout:       2 * time.Second,
		DefaultLimit:       100,
		SlowQueryThreshold: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler(), ReadTimeout: 5 * time.Second, WriteTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Paginated objects listing.
	_, body := getJSON(base, "/v1/objects?limit=3")
	fmt.Printf("objects: total=%v, first page of %d\n", body["total"], len(body["objects"].([]any)))

	// A SQL query under the configured deadline.
	_, body = getJSON(base, "/v1/query?q=SELECT+airline,+travelled(flight)+AS+d+FROM+planes+ORDER+BY+d+DESC+LIMIT+3")
	for _, row := range body["rows"].([]any) {
		r := row.([]any)
		fmt.Printf("query row: %-12v travelled %.1f\n", r[0], r[1])
	}

	// The same catalog with a 5ms budget: the evaluator observes the
	// deadline inside the plane×storm inside() kernels and the server
	// answers with the 408 envelope.
	code, body := getJSON(base, "/v1/query?timeout_ms=5&q=SELECT+name+FROM+planes,+storms+WHERE+sometimes(inside(flight,+extent))")
	env := body["error"].(map[string]any)
	fmt.Printf("timed-out query: HTTP %d, code=%v\n", code, env["code"])

	// The observability snapshot counts all of the above.
	_, body = getJSON(base, "/v1/metrics")
	reqs := body["requests"].(map[string]any)
	q := reqs["/v1/query"].(map[string]any)
	fmt.Printf("metrics: /v1/query count=%v timeouts=%v\n", q["count"], q["timeouts"])

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained; bye")
}
