// Serving: stand up the v1 HTTP API over a generated catalog and walk
// its surface — a paginated object listing, a SQL query under a
// deadline, a deliberately timed-out query showing the 408 error
// envelope, live observation ingestion with read-your-writes through
// /v1/window, and the observability snapshot — then shut down
// gracefully.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"movingdb/internal/db"
	"movingdb/internal/ingest"
	"movingdb/internal/moving"
	"movingdb/internal/obs"
	"movingdb/internal/server"
	"movingdb/internal/workload"
)

func getJSON(base, path string) (int, map[string]any) {
	resp, err := http.Get(base + path)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var body map[string]any
	if err := json.Unmarshal(raw, &body); err != nil {
		log.Fatalf("bad json from %s: %v", path, err)
	}
	return resp.StatusCode, body
}

func postJSON(base, path, payload string) (int, map[string]any) {
	resp, err := http.Post(base+path, "application/json", strings.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var body map[string]any
	if err := json.Unmarshal(raw, &body); err != nil {
		log.Fatalf("bad json from %s: %v", path, err)
	}
	return resp.StatusCode, body
}

func main() {
	// A catalog of flights and storms, as in the paper's Section 2
	// scenario, plus the flights as tracked objects for the index.
	g := workload.New(42)
	planes := db.NewRelation("planes", db.Schema{
		{Name: "airline", Type: db.TString},
		{Name: "id", Type: db.TString},
		{Name: "flight", Type: db.TMPoint},
	})
	var ids []string
	var objects []moving.MPoint
	for _, f := range g.Flights(40, 200) {
		planes.MustInsert(db.Tuple{f.Airline, f.ID, f.Flight})
		ids = append(ids, f.ID)
		objects = append(objects, f.Flight)
	}
	storms := db.NewRelation("storms", db.Schema{
		{Name: "name", Type: db.TString},
		{Name: "extent", Type: db.TMRegion},
	})
	for i := 0; i < 60; i++ {
		storms.MustInsert(db.Tuple{fmt.Sprintf("S%02d", i), g.Storm(0, 60, 10, 5)})
	}

	// A live ingestion pipeline seeded with the flights: the tracked
	// objects stay queryable, and POST /v1/ingest can extend them or add
	// new objects. Sharing one metrics registry puts ingest counters in
	// the same /v1/metrics snapshot as the request stats.
	metrics := obs.New(0)
	pipe, err := ingest.Open(ingest.Config{
		SeedIDs: ids,
		Seeds:   objects,
		Metrics: metrics,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pipe.Close()

	// The options struct replaces the old positional constructor: data,
	// deadlines, limits and logging in one place.
	s, err := server.New(server.Config{
		Catalog:            db.Catalog{"planes": planes, "storms": storms},
		ObjectIDs:          ids,
		Objects:            objects,
		Ingest:             pipe,
		Metrics:            metrics,
		QueryTimeout:       2 * time.Second,
		DefaultLimit:       100,
		SlowQueryThreshold: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler(), ReadTimeout: 5 * time.Second, WriteTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Paginated objects listing.
	_, body := getJSON(base, "/v1/objects?limit=3")
	fmt.Printf("objects: total=%v, first page of %d\n", body["total"], len(body["objects"].([]any)))

	// A SQL query under the configured deadline.
	_, body = getJSON(base, "/v1/query?q=SELECT+airline,+travelled(flight)+AS+d+FROM+planes+ORDER+BY+d+DESC+LIMIT+3")
	for _, row := range body["rows"].([]any) {
		r := row.([]any)
		fmt.Printf("query row: %-12v travelled %.1f\n", r[0], r[1])
	}

	// The same catalog with a 5ms budget: the evaluator observes the
	// deadline inside the plane×storm inside() kernels and the server
	// answers with the 408 envelope.
	code, body := getJSON(base, "/v1/query?timeout_ms=5&q=SELECT+name+FROM+planes,+storms+WHERE+sometimes(inside(flight,+extent))")
	env := body["error"].(map[string]any)
	fmt.Printf("timed-out query: HTTP %d, code=%v\n", code, env["code"])

	// Live ingestion: stream observations for six new vehicles through
	// POST /v1/ingest. ?sync=1 flushes before the ack, so the reads
	// below see every acknowledged observation (read-your-writes).
	stream := g.ObservationStream("live", 6, 8, 0, 5, 4)
	type wireObs struct {
		ID string  `json:"id"`
		T  float64 `json:"t"`
		X  float64 `json:"x"`
		Y  float64 `json:"y"`
	}
	batch := make([]wireObs, len(stream))
	var last wireObs // live0's latest fix, for the window probe below
	for i, o := range stream {
		batch[i] = wireObs{ID: o.ID, T: float64(o.T), X: o.P.X, Y: o.P.Y}
		if o.ID == "live0" {
			last = batch[i]
		}
	}
	payload, err := json.Marshal(batch)
	if err != nil {
		log.Fatal(err)
	}
	code, body = postJSON(base, "/v1/ingest?sync=1", string(payload))
	fmt.Printf("ingest: HTTP %d, accepted=%v wal_seq=%v\n", code, body["accepted"], body["seq"])

	// Read-your-writes: a window query around live0's last fix finds it
	// the instant the ack returns — the delta index covers the fresh
	// units before any tree rebuild.
	_, body = getJSON(base, fmt.Sprintf("/v1/window?x1=%g&y1=%g&x2=%g&y2=%g&t1=%g&t2=%g",
		last.X-1, last.Y-1, last.X+1, last.Y+1, last.T-1, last.T))
	fmt.Printf("window around live0's last fix: total=%v ids=%v\n", body["total"], body["ids"])

	// The listing now includes the six live objects next to the seeds.
	_, body = getJSON(base, "/v1/objects?limit=3")
	fmt.Printf("objects after ingest: total=%v\n", body["total"])

	// The observability snapshot counts all of the above.
	_, body = getJSON(base, "/v1/metrics")
	reqs := body["requests"].(map[string]any)
	q := reqs["/v1/query"].(map[string]any)
	fmt.Printf("metrics: /v1/query count=%v timeouts=%v\n", q["count"], q["timeouts"])

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained; bye")
}
