// Hurricane: a moving region (a drifting, breathing storm) interacting
// with moving points — the dynamic-objects scenario the paper's
// introduction motivates. Demonstrates atinstant on mregion
// (Section 5.1), the lifted area (exact quadratics per unit), and the
// inside algorithm (Section 5.2) with time restriction.
package main

import (
	"flag"
	"fmt"

	"movingdb/internal/temporal"
	"movingdb/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 42, "workload seed")
	ships := flag.Int("ships", 6, "number of ships")
	flag.Parse()

	g := workload.New(*seed)
	// A storm tracked over 48 units of 600s each.
	storm := g.Storm(0, 48, 10, 600)
	fmt.Printf("storm: %d units, defined %v\n", storm.M.Len(), storm.DefTime())

	// Snapshots (atinstant, Section 5.1) and the lifted area.
	area := storm.Area()
	for _, t := range []temporal.Instant{0, 7200, 14400, 21600, 28700} {
		snap, ok := storm.AtInstant(t)
		if !ok {
			continue
		}
		fmt.Printf("  t=%6.0f  faces=%d segments=%2d  area=%10.1f (lifted: %10.1f)\n",
			float64(t), snap.NumFaces(), snap.NumSegments(), snap.Area(), area.AtInstant(t).MustGet())
	}
	if mx, at, ok := area.Max(); ok {
		fmt.Printf("peak area %.1f at t=%.0f\n\n", mx, float64(at))
	}

	// Ships cross the area; find who was caught in the storm, when, and
	// for how long.
	for i := 0; i < *ships; i++ {
		ship := g.RandomTrajectory(0, 48, 600, 0.5)
		inside := ship.Inside(storm)
		caught := inside.WhenTrue()
		if caught.IsEmpty() {
			fmt.Printf("ship %d: never inside the storm\n", i)
			continue
		}
		fmt.Printf("ship %d: inside for %.0fs during %v\n", i, caught.Duration(), caught)
		// The exposed part of the route and its length.
		exposed := ship.When(inside)
		fmt.Printf("         exposed path length %.1f\n", exposed.Length())
	}
}
