// Storagedemo: the Section 4 data structures at work — attribute values
// encoded as root records plus database arrays, the inline/external
// (FLOB) placement policy, the page store, and equality by
// representation.
package main

import (
	"bytes"
	"fmt"

	"movingdb/internal/db"
	"movingdb/internal/moving"
	"movingdb/internal/storage"
	"movingdb/internal/workload"
)

func main() {
	g := workload.New(1)

	// A small and a large moving point.
	short := g.RandomTrajectory(0, 3, 60, 1)
	long := g.RandomTrajectory(0, 500, 60, 1)

	eShort := storage.EncodeMPoint(short)
	eLong := storage.EncodeMPoint(long)
	fmt.Println("mpoint encodings (root record + units array):")
	fmt.Printf("  short: root=%dB units-array=%dB (%d units)\n", len(eShort.Root), len(eShort.Arrays[0]), short.M.Len())
	fmt.Printf("  long:  root=%dB units-array=%dB (%d units)\n\n", len(eLong.Root), len(eLong.Arrays[0]), long.M.Len())

	// FLOB policy: small arrays inline, large arrays on pages.
	ps := storage.NewPageStore()
	svShort := storage.Store(ps, eShort)
	svLong := storage.Store(ps, eLong)
	fmt.Printf("inline threshold = %d bytes, page size = %d bytes\n", storage.InlineThreshold, storage.PageSize)
	fmt.Printf("  short: inline=%dB external-pages=%d\n", svShort.InlineSize(), svShort.ExternalPages())
	fmt.Printf("  long:  inline=%dB external-pages=%d\n\n", svLong.InlineSize(), svLong.ExternalPages())

	// Round trip through the page store.
	back, err := storage.Load(ps, svLong)
	if err != nil {
		panic(err)
	}
	decoded, err := storage.DecodeMPoint(back)
	if err != nil {
		panic(err)
	}
	t0, _ := long.DefTime().MinInstant()
	fmt.Printf("round trip ok: position at start %v == %v\n\n", decoded.AtInstant(t0), long.AtInstant(t0))

	// Equality by representation: same value, same bytes.
	a := storage.EncodeMPoint(short).Flatten()
	b := storage.EncodeMPoint(short).Flatten()
	fmt.Printf("equality by representation: %v (%d bytes compared)\n\n", bytes.Equal(a, b), len(a))

	// A moving region spills its subarrays (Figure 7 layout).
	stormRel := db.NewRelation("storms", db.Schema{
		{Name: "name", Type: db.TString},
		{Name: "extent", Type: db.TMRegion},
	})
	stormRel.MustInsert(db.Tuple{"Klaus", g.Storm(0, 64, 14, 600)})
	stored, err := db.StoreRelation(stormRel, ps)
	if err != nil {
		panic(err)
	}
	fmt.Printf("storms relation stored: inline=%dB, external pages=%d (page store total %d pages)\n",
		stored.InlineBytes(), stored.ExternalPages(), ps.NumPages())
	loaded, err := stored.Load()
	if err != nil {
		panic(err)
	}
	mr := db.Get[moving.MRegion](loaded, loaded.Scan()[0], "extent")
	if snap, ok := mr.AtInstant(9000); ok {
		fmt.Printf("decoded storm snapshot at t=9000: %d segments, area %.1f\n", snap.NumSegments(), snap.Area())
	}
}
