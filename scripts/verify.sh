#!/bin/sh
# Tier-1 verify recipe (ROADMAP.md): everything must build, pass vet,
# and pass the full test suite under the race detector.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> molint (static analysis: default, faultinject, debugcheck variants)"
# The suite must stay fast enough to run on every commit: budget 60s
# wall time for the full interprocedural run including stale-suppression
# detection and the per-check timing table.
molint_start=$(date +%s)
go run ./cmd/molint -summary -timings -stale-suppressions ./...
molint_elapsed=$(( $(date +%s) - molint_start ))
echo "molint wall time: ${molint_elapsed}s (budget 60s)"
if [ "$molint_elapsed" -gt 60 ]; then
    echo "verify: FAIL molint exceeded its 60s budget (${molint_elapsed}s)" >&2
    exit 1
fi

echo "==> go test -race ./..."
go test -race ./...

echo "==> allocgate (hot-path allocation budgets, alloc_budgets.json)"
go run ./cmd/mobench -exp allocgate

echo "==> go test -tags=debugcheck (runtime invariant assertions)"
go test -tags=debugcheck ./internal/mapping ./internal/spatial ./internal/moving

echo "==> go build -tags=faultinject ./..."
go build -tags=faultinject ./...

echo "==> go vet -tags=faultinject ./..."
go vet -tags=faultinject ./...

echo "==> fuzz smoke: FuzzWALDecode (10s)"
go test -run='^$' -fuzz=FuzzWALDecode -fuzztime=10s ./internal/ingest

echo "==> live-query soak (10s subscriber churn under ingest)"
go run ./cmd/mobench -exp soak -soak-dur 10s

echo "==> chaos (seeded simulator vs oracle, all profiles, -race -tags=faultinject)"
go test -race -tags=faultinject -count=1 ./internal/sim/

echo "verify: OK"
