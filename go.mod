module movingdb

go 1.22
